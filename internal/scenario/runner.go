package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/core"
)

// ReportSchema names the JSON layout documented in DESIGN.md §8; bump it
// when a field changes meaning.
const ReportSchema = "scenarios/v1"

// CellResult is the machine-readable record of one matrix cell: its
// coordinates, the accounting shared by both legs (identical by the
// engine's determinism guarantee — any difference is a divergence), and
// the per-leg wall times.
type CellResult struct {
	Family   string `json:"family"`
	N        int    `json:"n"`
	Engine   string `json:"engine"`
	Protocol string `json:"protocol"`
	Seed     int64  `json:"seed"`

	GraphEdges  int    `json:"graph_edges"`
	Rounds      int    `json:"rounds"`
	Steps       int    `json:"steps"`
	TotalBits   int64  `json:"total_bits"`
	MaxLinkBits int    `json:"max_link_bits"`
	MaxNodeBits int64  `json:"max_node_bits"`
	Output      string `json:"output"`

	OracleNs int64 `json:"oracle_ns"`
	EngineNs int64 `json:"engine_ns"`

	Diverged   bool   `json:"diverged"`
	Divergence string `json:"divergence,omitempty"`
}

// Summary aggregates the run for trend tracking (bench.sh folds it into
// BENCH_<date>.json).
type Summary struct {
	Cells       int      `json:"cells"`
	Divergences int      `json:"divergences"`
	Families    []string `json:"families"`
	Sizes       []int    `json:"sizes"`
	Engines     []string `json:"engines"`
	Protocols   []string `json:"protocols"`
	TotalRounds int64    `json:"total_rounds"`
	TotalBits   int64    `json:"total_bits"`
	OracleNs    int64    `json:"oracle_ns"`
	EngineNs    int64    `json:"engine_ns"`
	WallNs      int64    `json:"wall_ns"`
}

// Report is the full SCENARIOS_<date>.json document.
type Report struct {
	Schema   string       `json:"schema"`
	Date     string       `json:"date"`
	BaseSeed int64        `json:"base_seed"`
	Shards   int          `json:"shards"`
	Summary  Summary      `json:"summary"`
	Cells    []CellResult `json:"cells"`
}

// legOut is one leg's outcome while the passes are in flight.
type legOut struct {
	res   *LegResult
	edges int
	ns    int64
	err   error
}

// runLeg regenerates the cell's instance and executes one leg.
// Regenerating per leg (rather than sharing one graph) puts family
// generation itself under differential test and keeps legs fully
// independent.
func runLeg(c Cell, oracle bool) legOut {
	g := c.Family.Gen(c.N, c.Seed)
	leg := Leg{Oracle: oracle}
	if !oracle {
		leg.Batch = c.Engine.Batch
		leg.Parallelism = core.ResolveParallelism(c.Engine.Parallelism)
	} else {
		leg.Parallelism = 1
	}
	start := time.Now()
	res, err := c.Protocol.Run(g, c.Engine.Bandwidth, c.Seed+1, leg)
	return legOut{res: res, edges: g.M(), ns: time.Since(start).Nanoseconds(), err: err}
}

// statsDiff returns "" when the two legs' Stats agree bit for bit, else a
// description of the first differing field.
func statsDiff(a, b core.Stats) string {
	switch {
	case a.Rounds != b.Rounds:
		return fmt.Sprintf("Rounds %d != %d", a.Rounds, b.Rounds)
	case a.Steps != b.Steps:
		return fmt.Sprintf("Steps %d != %d", a.Steps, b.Steps)
	case a.TotalBits != b.TotalBits:
		return fmt.Sprintf("TotalBits %d != %d", a.TotalBits, b.TotalBits)
	case a.MaxLinkBits != b.MaxLinkBits:
		return fmt.Sprintf("MaxLinkBits %d != %d", a.MaxLinkBits, b.MaxLinkBits)
	case a.MaxNodeBits != b.MaxNodeBits:
		return fmt.Sprintf("MaxNodeBits %d != %d", a.MaxNodeBits, b.MaxNodeBits)
	case a.CutBits != b.CutBits:
		return fmt.Sprintf("CutBits %d != %d", a.CutBits, b.CutBits)
	case len(a.NodeSentBits) != len(b.NodeSentBits):
		return fmt.Sprintf("NodeSentBits length %d != %d", len(a.NodeSentBits), len(b.NodeSentBits))
	}
	for i := range a.NodeSentBits {
		if a.NodeSentBits[i] != b.NodeSentBits[i] {
			return fmt.Sprintf("NodeSentBits[%d] %d != %d", i, a.NodeSentBits[i], b.NodeSentBits[i])
		}
	}
	return ""
}

// RunMatrix executes every cell of the matrix under both the sequential
// scalar oracle and the cell's engine configuration, diffs the legs, and
// returns the aggregated report. Cells are sharded across a
// core.ParallelFor pool of `shards` workers (0 = GOMAXPROCS).
//
// Engine parallelism is plumbed to the protocols through the package
// default (core.SetDefaultParallelism), so the run proceeds in passes —
// the oracle leg of every cell first, then the engine legs grouped by
// configuration — and never flips the default while a pass is in flight.
// The previous default is restored on return.
func RunMatrix(m *Matrix, shards int) *Report {
	cells := m.Expand()
	// Shard resolution deliberately bypasses core.ResolveParallelism: the
	// package default is the *engine* parallelism knob (a -parallelism 1
	// oracle run must not collapse the cell pool to one shard).
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	prev := core.DefaultParallelism()
	defer core.SetDefaultParallelism(prev)

	wallStart := time.Now()
	oracle := make([]legOut, len(cells))
	engine := make([]legOut, len(cells))

	core.SetDefaultParallelism(1)
	core.ParallelFor(shards, len(cells), func(i int) {
		oracle[i] = runLeg(cells[i], true)
	})

	for _, eng := range m.Engines {
		idx := make([]int, 0, len(cells))
		for i, c := range cells {
			if c.Engine.Name == eng.Name {
				idx = append(idx, i)
			}
		}
		core.SetDefaultParallelism(eng.Parallelism)
		core.ParallelFor(shards, len(idx), func(k int) {
			i := idx[k]
			engine[i] = runLeg(cells[i], false)
		})
	}

	rep := &Report{
		Schema:   ReportSchema,
		Date:     time.Now().Format("20060102"),
		BaseSeed: m.BaseSeed,
		Shards:   shards,
		Cells:    make([]CellResult, len(cells)),
	}
	for i, c := range cells {
		cr := CellResult{
			Family:   c.Family.Name,
			N:        c.N,
			Engine:   c.Engine.Name,
			Protocol: c.Protocol.Name,
			Seed:     c.Seed,
			OracleNs: oracle[i].ns,
			EngineNs: engine[i].ns,
		}
		o, e := oracle[i], engine[i]
		switch {
		case o.err != nil:
			cr.Diverged = true
			cr.Divergence = fmt.Sprintf("oracle leg error: %v", o.err)
		case e.err != nil:
			cr.Diverged = true
			cr.Divergence = fmt.Sprintf("engine leg error: %v", e.err)
		case o.res == nil || e.res == nil:
			// A protocol returning (nil, nil) is a broken adapter; flag
			// the cell rather than crash the sweep.
			cr.Diverged = true
			cr.Divergence = fmt.Sprintf("protocol returned no result (oracle nil=%v, engine nil=%v)",
				o.res == nil, e.res == nil)
		case o.edges != e.edges:
			cr.Diverged = true
			cr.Divergence = fmt.Sprintf("generated graphs differ: %d vs %d edges", o.edges, e.edges)
		case o.res.Output != e.res.Output:
			cr.Diverged = true
			cr.Divergence = fmt.Sprintf("outputs differ: oracle %q vs engine %q", o.res.Output, e.res.Output)
		default:
			if d := statsDiff(o.res.Stats, e.res.Stats); d != "" {
				cr.Diverged = true
				cr.Divergence = "stats differ: " + d
			}
		}
		if o.err == nil && o.res != nil {
			cr.GraphEdges = o.edges
			cr.Rounds = o.res.Stats.Rounds
			cr.Steps = o.res.Stats.Steps
			cr.TotalBits = o.res.Stats.TotalBits
			cr.MaxLinkBits = o.res.Stats.MaxLinkBits
			cr.MaxNodeBits = o.res.Stats.MaxNodeBits
			cr.Output = o.res.Output
		}
		rep.Cells[i] = cr
	}
	rep.Summary = summarize(rep, m)
	rep.Summary.WallNs = time.Since(wallStart).Nanoseconds()
	return rep
}

// summarize folds the cell records into the Summary block.
func summarize(rep *Report, m *Matrix) Summary {
	s := Summary{Cells: len(rep.Cells)}
	for _, f := range m.Families {
		s.Families = append(s.Families, f.Name)
	}
	s.Sizes = append(s.Sizes, m.Sizes...)
	for _, e := range m.Engines {
		s.Engines = append(s.Engines, e.Name)
	}
	for _, p := range m.Protocols {
		s.Protocols = append(s.Protocols, p.Name)
	}
	sort.Strings(s.Families)
	sort.Strings(s.Engines)
	sort.Strings(s.Protocols)
	for _, c := range rep.Cells {
		if c.Diverged {
			s.Divergences++
		}
		s.TotalRounds += int64(c.Rounds)
		s.TotalBits += c.TotalBits
		s.OracleNs += c.OracleNs
		s.EngineNs += c.EngineNs
	}
	return s
}

// WriteJSON writes the report to path (SCENARIOS_<date>.json by
// convention) and returns the path actually written.
func (rep *Report) WriteJSON(path string) (string, error) {
	if path == "" {
		path = fmt.Sprintf("SCENARIOS_%s.json", rep.Date)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "", err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// WriteAndReport writes the report to path ("" = SCENARIOS_<date>.json),
// prints the summary line to w and any divergences to errw, and returns
// the process exit code (0 clean, 1 on divergences or a write error).
// Both cmd entry points share it so divergence rendering cannot drift.
func (rep *Report) WriteAndReport(path string, w, errw io.Writer) int {
	written, err := rep.WriteJSON(path)
	if err != nil {
		fmt.Fprintf(errw, "scenario: %v\n", err)
		return 1
	}
	s := rep.Summary
	fmt.Fprintf(w, "scenario matrix: %d cells, %d divergences, rounds=%d bits=%d; wrote %s\n",
		s.Cells, s.Divergences, s.TotalRounds, s.TotalBits, written)
	if div := rep.Divergent(); len(div) > 0 {
		fmt.Fprintf(errw, "DIVERGENCES: %d\n", len(div))
		for _, c := range div {
			fmt.Fprintf(errw, "  %s n=%d %s %s: %s\n", c.Family, c.N, c.Engine, c.Protocol, c.Divergence)
		}
		return 1
	}
	fmt.Fprintln(w, "  oracle and engine agree bit-for-bit on every cell")
	return 0
}

// Divergent returns the cells that diverged (empty on a clean run).
func (rep *Report) Divergent() []CellResult {
	var out []CellResult
	for _, c := range rep.Cells {
		if c.Diverged {
			out = append(out, c)
		}
	}
	return out
}
