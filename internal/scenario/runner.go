package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"repro/internal/core"
)

// ReportSchema names the JSON layout documented in DESIGN.md §8; bump it
// when a field changes meaning. v2 added Outcome/Error/Attempts per cell
// and Detected/Infra to the summary (the fault-injection harness).
const ReportSchema = "scenarios/v2"

// Cell outcomes. Every cell lands in exactly one:
//
//   - OutcomeOK: both legs succeeded and agree — under faults, the
//     protocol recovered the exact fault-free answer.
//   - OutcomeDetected: the engine leg failed loudly under an active
//     fault plan (frame validation, stall detector, certificate check).
//     This is the contracted fallback of every hardened protocol.
//   - OutcomeDiverged: the legs disagree, a leg failed without faults to
//     blame, or — the one unforgivable case — the engine leg ACCEPTED a
//     wrong answer under faults (a silent corruption).
//   - OutcomeInfra: a leg panicked or timed out even after the
//     quarantine retries; the cell says nothing about the protocol.
const (
	OutcomeOK       = "ok"
	OutcomeDetected = "detected"
	OutcomeDiverged = "diverged"
	OutcomeInfra    = "infra"
)

// CellResult is the machine-readable record of one matrix cell: its
// coordinates, the accounting shared by both legs (identical by the
// engine's determinism guarantee — any difference is a divergence), and
// the per-leg wall times.
type CellResult struct {
	Family   string `json:"family"`
	N        int    `json:"n"`
	Engine   string `json:"engine"`
	Protocol string `json:"protocol"`
	Seed     int64  `json:"seed"`

	GraphEdges  int    `json:"graph_edges"`
	Rounds      int    `json:"rounds"`
	Steps       int    `json:"steps"`
	TotalBits   int64  `json:"total_bits"`
	MaxLinkBits int    `json:"max_link_bits"`
	MaxNodeBits int64  `json:"max_node_bits"`
	Output      string `json:"output"`

	OracleNs int64 `json:"oracle_ns"`
	EngineNs int64 `json:"engine_ns"`

	Outcome  string `json:"outcome"`
	Error    string `json:"error,omitempty"`    // detected/infra detail
	Attempts int    `json:"attempts,omitempty"` // recorded when a leg was retried

	Diverged   bool   `json:"diverged"`
	Divergence string `json:"divergence,omitempty"`
}

// Summary aggregates the run for trend tracking (bench.sh folds it into
// BENCH_<date>.json).
type Summary struct {
	Cells       int      `json:"cells"`
	Divergences int      `json:"divergences"`
	Detected    int      `json:"detected"`
	Infra       int      `json:"infra"`
	Families    []string `json:"families"`
	Sizes       []int    `json:"sizes"`
	Engines     []string `json:"engines"`
	Protocols   []string `json:"protocols"`
	TotalRounds int64    `json:"total_rounds"`
	TotalBits   int64    `json:"total_bits"`
	OracleNs    int64    `json:"oracle_ns"`
	EngineNs    int64    `json:"engine_ns"`
	WallNs      int64    `json:"wall_ns"`
}

// Report is the full SCENARIOS_<date>.json document.
type Report struct {
	Schema   string       `json:"schema"`
	Date     string       `json:"date"`
	BaseSeed int64        `json:"base_seed"`
	Shards   int          `json:"shards"`
	Faults   string       `json:"faults,omitempty"`
	Summary  Summary      `json:"summary"`
	Cells    []CellResult `json:"cells"`
}

// legOut is one leg's outcome while the passes are in flight.
type legOut struct {
	res      *LegResult
	edges    int
	ns       int64
	err      error
	infra    bool // panic or timeout, as opposed to a protocol error
	attempts int
}

// runLeg regenerates the cell's instance and executes one leg.
// Regenerating per leg (rather than sharing one graph) puts family
// generation itself under differential test and keeps legs fully
// independent.
func runLeg(c Cell, oracle, faulty bool) legOut {
	g := c.Family.Gen(c.N, c.Seed)
	leg := Leg{Oracle: oracle, Faulty: faulty}
	if !oracle {
		leg.Batch = c.Engine.Batch
		leg.Parallelism = core.ResolveParallelism(c.Engine.Parallelism)
	} else {
		leg.Parallelism = 1
	}
	start := time.Now()
	res, err := c.Protocol.Run(g, c.Engine.Bandwidth, c.Seed+1, leg)
	return legOut{res: res, edges: g.M(), ns: time.Since(start).Nanoseconds(), err: err}
}

// statsDiff returns "" when the two legs' Stats agree bit for bit, else a
// description of the first differing field.
func statsDiff(a, b core.Stats) string {
	switch {
	case a.Rounds != b.Rounds:
		return fmt.Sprintf("Rounds %d != %d", a.Rounds, b.Rounds)
	case a.Steps != b.Steps:
		return fmt.Sprintf("Steps %d != %d", a.Steps, b.Steps)
	case a.TotalBits != b.TotalBits:
		return fmt.Sprintf("TotalBits %d != %d", a.TotalBits, b.TotalBits)
	case a.MaxLinkBits != b.MaxLinkBits:
		return fmt.Sprintf("MaxLinkBits %d != %d", a.MaxLinkBits, b.MaxLinkBits)
	case a.MaxNodeBits != b.MaxNodeBits:
		return fmt.Sprintf("MaxNodeBits %d != %d", a.MaxNodeBits, b.MaxNodeBits)
	case a.CutBits != b.CutBits:
		return fmt.Sprintf("CutBits %d != %d", a.CutBits, b.CutBits)
	case len(a.NodeSentBits) != len(b.NodeSentBits):
		return fmt.Sprintf("NodeSentBits length %d != %d", len(a.NodeSentBits), len(b.NodeSentBits))
	}
	for i := range a.NodeSentBits {
		if a.NodeSentBits[i] != b.NodeSentBits[i] {
			return fmt.Sprintf("NodeSentBits[%d] %d != %d", i, a.NodeSentBits[i], b.NodeSentBits[i])
		}
	}
	return ""
}

// RunMatrix executes every cell of the matrix under both the sequential
// scalar oracle and the cell's engine configuration, diffs the legs, and
// returns the aggregated report. Cells are sharded across a
// core.ParallelFor pool of `shards` workers (0 = GOMAXPROCS). It is the
// clean-channel compatibility wrapper around RunMatrixOpts; the only
// error RunMatrixOpts can return is a ledger failure, which cannot
// happen without a ledger.
func RunMatrix(m *Matrix, shards int) *Report {
	rep, err := RunMatrixOpts(m, RunOptions{Shards: shards})
	if err != nil {
		// Unreachable without RunOptions.Ledger; keep the signature stable.
		panic(err)
	}
	return rep
}

// classify folds a cell's two leg outcomes into its CellResult. Under an
// active fault plan the engine leg's Stats legitimately differ from the
// oracle's (retransmissions, burned sketch copies), so the stats diff
// only gates clean cells; outputs must match exactly either way — a
// faulted engine leg that returns success with a different output is a
// silent corruption, the one outcome the whole subsystem exists to rule
// out.
func classify(c Cell, o, e legOut, faulty bool) CellResult {
	cr := CellResult{
		Family:   c.Family.Name,
		N:        c.N,
		Engine:   c.Engine.Name,
		Protocol: c.Protocol.Name,
		Seed:     c.Seed,
		OracleNs: o.ns,
		EngineNs: e.ns,
	}
	if o.attempts > 1 || e.attempts > 1 {
		cr.Attempts = o.attempts
		if e.attempts > cr.Attempts {
			cr.Attempts = e.attempts
		}
	}
	switch {
	case o.infra:
		cr.Outcome = OutcomeInfra
		cr.Error = fmt.Sprintf("oracle leg: %v", o.err)
	case e.infra:
		cr.Outcome = OutcomeInfra
		cr.Error = fmt.Sprintf("engine leg: %v", e.err)
	case o.err != nil:
		// The oracle leg runs on a clean channel even in faulted sweeps;
		// its failure is a real protocol/self-check failure.
		cr.Outcome = OutcomeDiverged
		cr.Divergence = fmt.Sprintf("oracle leg error: %v", o.err)
	case e.err != nil && faulty:
		cr.Outcome = OutcomeDetected
		cr.Error = e.err.Error()
	case e.err != nil:
		cr.Outcome = OutcomeDiverged
		cr.Divergence = fmt.Sprintf("engine leg error: %v", e.err)
	case o.res == nil || e.res == nil:
		// A protocol returning (nil, nil) is a broken adapter; flag
		// the cell rather than crash the sweep.
		cr.Outcome = OutcomeDiverged
		cr.Divergence = fmt.Sprintf("protocol returned no result (oracle nil=%v, engine nil=%v)",
			o.res == nil, e.res == nil)
	case o.edges != e.edges:
		cr.Outcome = OutcomeDiverged
		cr.Divergence = fmt.Sprintf("generated graphs differ: %d vs %d edges", o.edges, e.edges)
	case o.res.Output != e.res.Output:
		cr.Outcome = OutcomeDiverged
		if faulty {
			cr.Divergence = fmt.Sprintf("SILENT CORRUPTION: engine leg accepted %q under faults, oracle says %q",
				e.res.Output, o.res.Output)
		} else {
			cr.Divergence = fmt.Sprintf("outputs differ: oracle %q vs engine %q", o.res.Output, e.res.Output)
		}
	default:
		cr.Outcome = OutcomeOK
		if !faulty {
			if d := statsDiff(o.res.Stats, e.res.Stats); d != "" {
				cr.Outcome = OutcomeDiverged
				cr.Divergence = "stats differ: " + d
			}
		}
	}
	cr.Diverged = cr.Outcome == OutcomeDiverged
	if o.err == nil && o.res != nil {
		cr.GraphEdges = o.edges
		cr.Rounds = o.res.Stats.Rounds
		cr.Steps = o.res.Stats.Steps
		cr.TotalBits = o.res.Stats.TotalBits
		cr.MaxLinkBits = o.res.Stats.MaxLinkBits
		cr.MaxNodeBits = o.res.Stats.MaxNodeBits
		cr.Output = o.res.Output
	}
	return cr
}

// summarize folds the cell records into the Summary block.
func summarize(rep *Report, m *Matrix) Summary {
	s := Summary{Cells: len(rep.Cells)}
	for _, f := range m.Families {
		s.Families = append(s.Families, f.Name)
	}
	s.Sizes = append(s.Sizes, m.Sizes...)
	for _, e := range m.Engines {
		s.Engines = append(s.Engines, e.Name)
	}
	for _, p := range m.Protocols {
		s.Protocols = append(s.Protocols, p.Name)
	}
	sort.Strings(s.Families)
	sort.Strings(s.Engines)
	sort.Strings(s.Protocols)
	for _, c := range rep.Cells {
		switch c.Outcome {
		case OutcomeDiverged:
			s.Divergences++
		case OutcomeDetected:
			s.Detected++
		case OutcomeInfra:
			s.Infra++
		}
		s.TotalRounds += int64(c.Rounds)
		s.TotalBits += c.TotalBits
		s.OracleNs += c.OracleNs
		s.EngineNs += c.EngineNs
	}
	return s
}

// BuildReport assembles a Report from externally executed cell results
// — the scenariod service path, where workers run cells one at a time
// and the server collects them in matrix-expansion order. faults is the
// run's fault spec ("", "none" or a Spec string; recorded when active).
func BuildReport(m *Matrix, cells []CellResult, faults string) *Report {
	rep := &Report{
		Schema:   ReportSchema,
		Date:     time.Now().Format("20060102"),
		BaseSeed: m.BaseSeed,
		Cells:    cells,
	}
	if faults != "" && faults != "none" {
		rep.Faults = faults
	}
	rep.Summary = summarize(rep, m)
	return rep
}

// Canonicalize zeroes every nondeterministic field of the report —
// date, shard count, wall and per-leg timings — so two complete runs of
// the same matrix marshal to byte-identical JSON. This is the report
// form scenariod serves: it is what lets the chaos harness assert that
// a run surviving a SIGKILL'd worker ends byte-for-byte equal to an
// uninterrupted one.
func (rep *Report) Canonicalize() {
	rep.Date = ""
	rep.Shards = 0
	rep.Summary.WallNs = 0
	rep.Summary.OracleNs = 0
	rep.Summary.EngineNs = 0
	for i := range rep.Cells {
		rep.Cells[i].OracleNs = 0
		rep.Cells[i].EngineNs = 0
	}
}

// ExitCode maps the run to the scenariorun process exit code documented
// in DESIGN.md §8: 0 all ok, 1 any divergence (including silent
// corruption under faults), 3 detected faults only, 4 infrastructure
// failures (2 is reserved for usage errors). Divergence outranks infra
// outranks detected: the worst news is the headline.
func (rep *Report) ExitCode() int {
	var div, det, infra int
	for _, c := range rep.Cells {
		switch {
		case c.Diverged || c.Outcome == OutcomeDiverged:
			div++
		case c.Outcome == OutcomeInfra:
			infra++
		case c.Outcome == OutcomeDetected:
			det++
		}
	}
	switch {
	case div > 0:
		return 1
	case infra > 0:
		return 4
	case det > 0:
		return 3
	default:
		return 0
	}
}

// WriteJSON writes the report to path (SCENARIOS_<date>.json by
// convention) and returns the path actually written.
func (rep *Report) WriteJSON(path string) (string, error) {
	if path == "" {
		path = fmt.Sprintf("SCENARIOS_%s.json", rep.Date)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "", err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// WriteAndReport writes the report to path ("" = SCENARIOS_<date>.json),
// prints the summary line to w and any divergences to errw, and returns
// the process exit code (see ExitCode; a write error returns 1). Both
// cmd entry points share it so divergence rendering cannot drift.
func (rep *Report) WriteAndReport(path string, w, errw io.Writer) int {
	written, err := rep.WriteJSON(path)
	if err != nil {
		fmt.Fprintf(errw, "scenario: %v\n", err)
		return 1
	}
	s := rep.Summary
	fmt.Fprintf(w, "scenario matrix: %d cells, %d divergences, %d detected, %d infra, rounds=%d bits=%d; wrote %s\n",
		s.Cells, s.Divergences, s.Detected, s.Infra, s.TotalRounds, s.TotalBits, written)
	if div := rep.Divergent(); len(div) > 0 {
		fmt.Fprintf(errw, "DIVERGENCES: %d\n", len(div))
		for _, c := range div {
			fmt.Fprintf(errw, "  %s n=%d %s %s: %s\n", c.Family, c.N, c.Engine, c.Protocol, c.Divergence)
		}
	} else if s.Detected == 0 && s.Infra == 0 {
		fmt.Fprintln(w, "  oracle and engine agree bit-for-bit on every cell")
	}
	for _, c := range rep.Cells {
		if c.Outcome == OutcomeInfra {
			fmt.Fprintf(errw, "  INFRA %s n=%d %s %s: %s\n", c.Family, c.N, c.Engine, c.Protocol, c.Error)
		}
	}
	return rep.ExitCode()
}

// Divergent returns the cells that diverged (empty on a clean run).
func (rep *Report) Divergent() []CellResult {
	var out []CellResult
	for _, c := range rep.Cells {
		if c.Diverged {
			out = append(out, c)
		}
	}
	return out
}
