package scenario

import (
	"math/rand"

	"repro/internal/graph"
	"repro/internal/rsgraph"
	"repro/internal/turan"
)

// famRng returns the generation rng of a cell; it is separate from the
// protocol seed so a family tweak cannot silently shift protocol coins.
func famRng(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed ^ 0x5cea11))
}

// DefaultFamilies is the standing family set of the scenario matrix. Each
// generator is deterministic in (n, seed); see the per-family notes for
// which paper claim the family stresses.
func DefaultFamilies() []Family {
	return []Family{
		{
			Name: "gnp",
			Desc: "Erdős–Rényi G(n, 1/4): the average-case instances of E4/E8",
			Gen: func(n int, seed int64) *graph.Graph {
				return graph.Gnp(n, 0.25, famRng(seed))
			},
		},
		{
			Name: "powerlaw",
			Desc: "preferential attachment, m=3: skewed degrees stress balanced routing and grouping",
			Gen: func(n int, seed int64) *graph.Graph {
				return graph.PowerLaw(n, 3, famRng(seed))
			},
		},
		{
			Name: "planted-h",
			Desc: "sparse G(n, 0.05) with two planted K4 copies: the Theorem 7/9 'yes' instances",
			Gen: func(n int, seed int64) *graph.Graph {
				g, _ := graph.PlantedGnp(n, 0.05, graph.Complete(4), 2, famRng(seed))
				return g
			},
		},
		{
			Name: "rs",
			Desc: "Ruzsa–Szemerédi tripartite (Claim 23): every edge in exactly one triangle",
			Gen: func(n int, seed int64) *graph.Graph {
				k := n / 6
				if k < 2 {
					k = 2
				}
				t, err := rsgraph.NewTripartite(k)
				if err != nil {
					panic(err) // k >= 2 is always valid
				}
				return graph.WithIsolated(t.G, n)
			},
		},
		{
			Name: "turan",
			Desc: "Turán graph T(n,3): the K4-free extremal instance of Claim 6",
			Gen: func(n int, seed int64) *graph.Graph {
				return turan.TuranGraph(n, 3)
			},
		},
		{
			Name: "demand",
			Desc: "complete graph K_n: the worst-case all-to-all routing demand",
			Gen: func(n int, seed int64) *graph.Graph {
				return graph.Complete(n)
			},
		},
		// The weighted families carry topology through the *graph.Graph
		// matrix surface; weights are attached inside the semiring
		// protocols with graph.WeightedFromSeed(g, protocolSeed, ·),
		// which depends only on (seed, endpoints) — so both differential
		// legs see identical weights on every family, and these
		// generators produce exactly the topologies of the standalone
		// graph.WeightedGnp/WeightedPowerLaw generators (same seeded
		// rng) without building a weight table that would be discarded.
		{
			Name: "components",
			Desc: "three disconnected G(n/3, 0.35) blobs: the multi-component family of the sketch protocols",
			Gen: func(n int, seed int64) *graph.Graph {
				return graph.ComponentsGnp(n, 3, 0.35, famRng(seed))
			},
		},
		{
			Name: "wgnp",
			Desc: "weighted G(n, 0.3): the dense weighted family of the semiring MM protocols",
			Gen: func(n int, seed int64) *graph.Graph {
				return graph.Gnp(n, 0.3, famRng(seed))
			},
		},
		{
			Name: "wpower",
			Desc: "weighted preferential attachment, m=2: skewed-degree weighted distances",
			Gen: func(n int, seed int64) *graph.Graph {
				return graph.PowerLaw(n, 2, famRng(seed))
			},
		},
	}
}

// FamilyByName resolves a family from the default set.
func FamilyByName(name string) (Family, bool) {
	for _, f := range DefaultFamilies() {
		if f.Name == name {
			return f, true
		}
	}
	return Family{}, false
}
