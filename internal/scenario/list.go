package scenario

import (
	"fmt"
	"io"
	"sort"
)

// WriteList renders the matrix dimensions and per-protocol coverage —
// the `scenariorun -list` output. Families, engine configurations and
// protocols print sorted by name (never in declaration order), so the
// listing is deterministic under matrix growth and pinned by the
// list.golden test.
func (m *Matrix) WriteList(w io.Writer) {
	fams := append([]Family(nil), m.Families...)
	sort.Slice(fams, func(i, j int) bool { return fams[i].Name < fams[j].Name })
	fmt.Fprintln(w, "families:")
	for _, f := range fams {
		fmt.Fprintf(w, "  %-10s %s\n", f.Name, f.Desc)
	}

	engs := append([]EngineConfig(nil), m.Engines...)
	sort.Slice(engs, func(i, j int) bool { return engs[i].Name < engs[j].Name })
	fmt.Fprintln(w, "engines:")
	for _, e := range engs {
		fmt.Fprintf(w, "  %-14s parallelism=%d batch=%v bandwidth=%d\n", e.Name, e.Parallelism, e.Batch, e.Bandwidth)
	}

	protos := append([]Protocol(nil), m.Protocols...)
	sort.Slice(protos, func(i, j int) bool { return protos[i].Name < protos[j].Name })
	fmt.Fprintln(w, "protocols:")
	for _, p := range protos {
		fmt.Fprintf(w, "  %-12s %s\n", p.Name, p.Desc)
	}

	sizes := append([]int(nil), m.Sizes...)
	sort.Ints(sizes)
	fmt.Fprintf(w, "sizes: %v\n", sizes)

	fmt.Fprintln(w, "coverage (per protocol × engine config):")
	for _, line := range m.Coverage() {
		fmt.Fprintf(w, "  %s\n", line)
	}
}
