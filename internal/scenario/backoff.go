package scenario

import (
	"hash/fnv"
	"io"
	"strconv"
	"time"
)

// Backoff returns the pause before retry attempt `attempt` (1-based):
// capped exponential — base·2^(attempt-1), clamped to cap — scaled by a
// deterministic jitter factor in [0.5, 1.0] derived from (seed, key,
// attempt). The jitter spreads a fleet of workers retrying the same
// transiently overloaded box instead of hammering it in lockstep (the
// routing.ReliableStream backoff discipline, lifted to wall time), and
// it is a pure function of its arguments — no shared rng, no real
// randomness — so schedules replay bit-for-bit and unit tests pin them
// with a fake sleep. base <= 0 disables backoff entirely; cap <= 0
// defaults to 32·base.
func Backoff(base, cap time.Duration, attempt int, seed int64, key string) time.Duration {
	if base <= 0 || attempt <= 0 {
		return 0
	}
	if cap <= 0 {
		cap = 32 * base
	}
	d := base
	for i := 1; i < attempt; i++ {
		if d >= cap/2 {
			d = cap
			break
		}
		d *= 2
	}
	if d > cap {
		d = cap
	}
	// splitmix64-style mix of (seed, key, attempt), as the fault plans do.
	h := fnv.New64a()
	io.WriteString(h, strconv.FormatInt(seed, 10))
	io.WriteString(h, "|")
	io.WriteString(h, key)
	io.WriteString(h, "|")
	io.WriteString(h, strconv.Itoa(attempt))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	frac := float64(x>>11) / float64(uint64(1)<<53) // uniform in [0, 1)
	return time.Duration(float64(d) * (0.5 + frac/2))
}
