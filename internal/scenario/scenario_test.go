package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// testMatrix is a trimmed sweep that keeps unit-test wall time low while
// still covering every protocol and both engine configurations.
func testMatrix(t *testing.T) *Matrix {
	t.Helper()
	m := DefaultMatrix(true, 1)
	m.Sizes = []int{12}
	return m
}

func TestQuickMatrixShape(t *testing.T) {
	m := DefaultMatrix(true, 1)
	cells := m.Expand()
	if len(cells) < 60 {
		t.Fatalf("quick matrix has %d cells, want >= 60", len(cells))
	}
	if len(m.Families) < 5 || len(m.Sizes) < 3 || len(m.Engines) < 2 || len(m.Protocols) < 2 {
		t.Fatalf("quick matrix %dx%dx%dx%d under the acceptance floor (5x3x2x2)",
			len(m.Families), len(m.Sizes), len(m.Engines), len(m.Protocols))
	}
	seen := map[int64]bool{}
	for _, c := range cells {
		if seen[c.Seed] {
			t.Fatalf("duplicate cell seed %d", c.Seed)
		}
		seen[c.Seed] = true
	}
	again := m.Expand()
	for i := range cells {
		if cells[i].Seed != again[i].Seed {
			t.Fatal("Expand is not deterministic")
		}
	}
}

func TestMatrixRunsClean(t *testing.T) {
	m := testMatrix(t)
	rep := RunMatrix(m, 0)
	if rep.Summary.Cells != len(m.Expand()) {
		t.Fatalf("summary cells %d != %d", rep.Summary.Cells, len(m.Expand()))
	}
	for _, c := range rep.Divergent() {
		t.Errorf("divergence: %s n=%d %s %s: %s", c.Family, c.N, c.Engine, c.Protocol, c.Divergence)
	}
	for _, c := range rep.Cells {
		if c.Rounds <= 0 || c.TotalBits <= 0 {
			t.Errorf("cell %s/%s/%s has empty accounting (rounds=%d bits=%d)",
				c.Family, c.Engine, c.Protocol, c.Rounds, c.TotalBits)
		}
		if c.Output == "" {
			t.Errorf("cell %s/%s/%s has no output digest", c.Family, c.Engine, c.Protocol)
		}
	}
}

func TestShardingDoesNotChangeResults(t *testing.T) {
	m := testMatrix(t)
	m.Protocols = m.Protocols[:2] // triangle + hdetect keep this fast
	a := RunMatrix(m, 1)
	b := RunMatrix(m, 4)
	if len(a.Cells) != len(b.Cells) {
		t.Fatalf("cell counts differ: %d vs %d", len(a.Cells), len(b.Cells))
	}
	for i := range a.Cells {
		ca, cb := a.Cells[i], b.Cells[i]
		ca.OracleNs, ca.EngineNs = 0, 0
		cb.OracleNs, cb.EngineNs = 0, 0
		if ca != cb {
			t.Fatalf("cell %d differs across shard counts:\n  1 shard: %+v\n  4 shards: %+v", i, ca, cb)
		}
	}
}

func TestRunMatrixRestoresParallelismDefault(t *testing.T) {
	prev := core.DefaultParallelism()
	defer core.SetDefaultParallelism(prev)
	core.SetDefaultParallelism(3)
	m := testMatrix(t)
	m.Protocols = m.Protocols[:1]
	m.Families = m.Families[:1]
	RunMatrix(m, 2)
	if got := core.DefaultParallelism(); got != 3 {
		t.Fatalf("default parallelism left at %d, want 3 restored", got)
	}
}

func TestRunnerFlagsOutputDivergence(t *testing.T) {
	m := testMatrix(t)
	m.Families = m.Families[:1]
	m.Engines = m.Engines[:1]
	m.Protocols = []Protocol{{
		Name: "two-faced",
		Run: func(g *graph.Graph, bandwidth int, seed int64, leg Leg) (*LegResult, error) {
			out := "oracle"
			if !leg.Oracle {
				out = "engine"
			}
			return &LegResult{Output: out, Stats: core.Stats{Rounds: 1, TotalBits: 1}}, nil
		},
	}}
	rep := RunMatrix(m, 1)
	if len(rep.Divergent()) != len(rep.Cells) {
		t.Fatalf("divergent output not flagged: %+v", rep.Cells)
	}
	if rep.Summary.Divergences != len(rep.Cells) {
		t.Fatalf("summary divergences %d, want %d", rep.Summary.Divergences, len(rep.Cells))
	}
}

func TestRunnerFlagsStatsDivergence(t *testing.T) {
	m := testMatrix(t)
	m.Families = m.Families[:1]
	m.Engines = m.Engines[:1]
	m.Protocols = []Protocol{{
		Name: "stats-skew",
		Run: func(g *graph.Graph, bandwidth int, seed int64, leg Leg) (*LegResult, error) {
			s := core.Stats{Rounds: 1, TotalBits: 10, NodeSentBits: make([]int64, g.N())}
			if !leg.Oracle {
				s.NodeSentBits[0] = 1 // per-node totals must be diffed too
			}
			return &LegResult{Output: "same", Stats: s}, nil
		},
	}}
	rep := RunMatrix(m, 1)
	for _, c := range rep.Cells {
		if !c.Diverged {
			t.Fatalf("stats divergence not flagged: %+v", c)
		}
	}
}

func TestRunnerFlagsLegError(t *testing.T) {
	m := testMatrix(t)
	m.Families = m.Families[:1]
	m.Engines = m.Engines[:1]
	m.Protocols = []Protocol{{
		Name: "engine-bomb",
		Run: func(g *graph.Graph, bandwidth int, seed int64, leg Leg) (*LegResult, error) {
			if !leg.Oracle {
				return nil, fmt.Errorf("boom")
			}
			return &LegResult{Output: "ok", Stats: core.Stats{Rounds: 1, TotalBits: 1}}, nil
		},
	}}
	rep := RunMatrix(m, 1)
	for _, c := range rep.Cells {
		if !c.Diverged || c.Divergence == "" {
			t.Fatalf("leg error not surfaced: %+v", c)
		}
	}
}

func TestRunnerFlagsNilResult(t *testing.T) {
	m := testMatrix(t)
	m.Families = m.Families[:1]
	m.Engines = m.Engines[:1]
	m.Protocols = []Protocol{{
		Name: "no-result",
		Run: func(g *graph.Graph, bandwidth int, seed int64, leg Leg) (*LegResult, error) {
			return nil, nil // broken adapter: must flag, not panic
		},
	}}
	rep := RunMatrix(m, 1)
	for _, c := range rep.Cells {
		if !c.Diverged || c.Divergence == "" {
			t.Fatalf("nil protocol result not flagged: %+v", c)
		}
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	m := testMatrix(t)
	m.Families = m.Families[:2]
	m.Protocols = m.Protocols[:2]
	rep := RunMatrix(m, 0)
	path, err := rep.WriteJSON(filepath.Join(t.TempDir(), "SCENARIOS_test.json"))
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if back.Schema != ReportSchema {
		t.Fatalf("schema %q, want %q", back.Schema, ReportSchema)
	}
	if back.Summary.Cells != len(back.Cells) {
		t.Fatalf("summary cells %d != %d records", back.Summary.Cells, len(back.Cells))
	}
}

func TestWriteAndReport(t *testing.T) {
	m := testMatrix(t)
	m.Families = m.Families[:1]
	m.Engines = m.Engines[:1]
	m.Protocols = m.Protocols[:1]
	rep := RunMatrix(m, 1)

	var out, errs strings.Builder
	path := filepath.Join(t.TempDir(), "clean.json")
	if code := rep.WriteAndReport(path, &out, &errs); code != 0 {
		t.Fatalf("clean run exit code %d, stderr %q", code, errs.String())
	}
	if !strings.Contains(out.String(), "0 divergences") || !strings.Contains(out.String(), path) {
		t.Fatalf("summary line missing counts or path: %q", out.String())
	}
	if errs.Len() != 0 {
		t.Fatalf("clean run wrote to stderr: %q", errs.String())
	}

	rep.Cells[0].Diverged = true
	rep.Cells[0].Divergence = "synthetic"
	out.Reset()
	errs.Reset()
	if code := rep.WriteAndReport(filepath.Join(t.TempDir(), "div.json"), &out, &errs); code != 1 {
		t.Fatalf("divergent run exit code %d, want 1", code)
	}
	if !strings.Contains(errs.String(), "synthetic") {
		t.Fatalf("divergence not reported on stderr: %q", errs.String())
	}

	out.Reset()
	errs.Reset()
	if code := rep.WriteAndReport(filepath.Join(t.TempDir(), "no-such-dir", "x.json"), &out, &errs); code != 1 {
		t.Fatalf("write failure exit code %d, want 1", code)
	}
}

func TestFilterHelpers(t *testing.T) {
	m := DefaultMatrix(true, 1)
	if err := m.FilterFamilies("wgnp, gnp"); err != nil {
		t.Fatal(err)
	}
	if len(m.Families) != 2 || m.Families[0].Name != "wgnp" || m.Families[1].Name != "gnp" {
		t.Fatalf("family filter picked %+v", m.Families)
	}
	if err := m.FilterProtocols("apsp,matpower"); err != nil {
		t.Fatal(err)
	}
	if len(m.Protocols) != 2 {
		t.Fatalf("protocol filter picked %d entries", len(m.Protocols))
	}
	// The narrow config is full-only but must stay reachable from quick.
	if err := m.FilterEngines("par2-b16"); err != nil {
		t.Fatal(err)
	}
	if len(m.Engines) != 1 || m.Engines[0].Name != "par2-b16" {
		t.Fatalf("engine filter picked %+v", m.Engines)
	}
	// Empty filters are no-ops; unknown names are errors.
	if err := m.FilterFamilies(""); err != nil || len(m.Families) != 2 {
		t.Fatal("empty family filter must be a no-op")
	}
	for _, err := range []error{
		m.FilterFamilies("nope"), m.FilterProtocols("nope"), m.FilterEngines("nope"),
	} {
		if err == nil {
			t.Fatal("unknown name accepted by a filter")
		}
	}
}

func TestCoverageListsEveryProtocol(t *testing.T) {
	m := DefaultMatrix(false, 1)
	lines := m.Coverage()
	if len(lines) != len(m.Protocols) {
		t.Fatalf("coverage has %d lines for %d protocols", len(lines), len(m.Protocols))
	}
	names := make([]string, len(m.Protocols))
	for i, p := range m.Protocols {
		names[i] = p.Name
	}
	sort.Strings(names) // Coverage prints protocols sorted by name
	wantCells := len(m.Families) * len(m.Sizes) * len(m.Engines)
	for i, line := range lines {
		if !strings.Contains(line, names[i]) {
			t.Fatalf("coverage line %d %q does not name protocol %s", i, line, names[i])
		}
		if !strings.Contains(line, fmt.Sprintf("%d cells", wantCells)) {
			t.Fatalf("coverage line %q missing the %d-cell count", line, wantCells)
		}
		for _, e := range m.Engines {
			if !strings.Contains(line, e.Name) {
				t.Fatalf("coverage line %q missing engine %s", line, e.Name)
			}
		}
	}
}

func TestQuickMatrixMeetsAcceptanceFloor(t *testing.T) {
	m := DefaultMatrix(true, 1)
	if cells := len(m.Expand()); cells < 230 {
		t.Fatalf("quick matrix has %d cells, acceptance floor is 230", cells)
	}
	for _, name := range []string{"apsp", "khop", "matpower"} {
		if _, ok := ProtocolByName(name); !ok {
			t.Fatalf("semiring protocol %s not registered", name)
		}
	}
	for _, name := range []string{"wgnp", "wpower"} {
		if _, ok := FamilyByName(name); !ok {
			t.Fatalf("weighted family %s not registered", name)
		}
	}
}

func TestFamiliesDeterministicAndSized(t *testing.T) {
	for _, f := range DefaultFamilies() {
		for _, n := range []int{12, 18, 24} {
			a := f.Gen(n, 77)
			b := f.Gen(n, 77)
			if !a.Equal(b) {
				t.Errorf("family %s not deterministic at n=%d", f.Name, n)
			}
			if a.N() != n {
				t.Errorf("family %s generated N=%d for requested n=%d", f.Name, a.N(), n)
			}
			c := f.Gen(n, 78)
			if f.Name != "turan" && f.Name != "demand" && f.Name != "rs" && a.Equal(c) {
				t.Errorf("family %s ignores the seed", f.Name)
			}
		}
	}
}
