package scenario

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"testing"
	"time"
)

func tinyMatrix(t *testing.T) *Matrix {
	t.Helper()
	m := DefaultMatrix(true, 7)
	m.Sizes = []int{10}
	if err := m.FilterFamilies("gnp"); err != nil {
		t.Fatal(err)
	}
	if err := m.FilterProtocols("triangle,connectivity"); err != nil {
		t.Fatal(err)
	}
	if err := m.FilterEngines("par4"); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCellFromNames(t *testing.T) {
	want := tinyMatrix(t).Expand()[0]
	got, err := CellFromNames(want.Family.Name, want.N, want.Engine.Name, want.Protocol.Name, want.Seed)
	if err != nil {
		t.Fatal(err)
	}
	if got.Key() != want.Key() || got.Engine != want.Engine {
		t.Fatalf("roundtrip: got %q, want %q", got.Key(), want.Key())
	}
	for _, bad := range [][4]string{
		{"no-such-family", "par4", "triangle", "family"},
		{"gnp", "no-such-engine", "triangle", "engine"},
		{"gnp", "par4", "no-such-protocol", "protocol"},
	} {
		if _, err := CellFromNames(bad[0], 10, bad[1], bad[2], 1); err == nil {
			t.Fatalf("unknown %s accepted", bad[3])
		}
	}
}

// RunCell is the single-cell mirror of the matrix runner: every cell
// run alone must classify exactly as it does inside the full sweep.
func TestRunCellMatchesMatrixRun(t *testing.T) {
	m := tinyMatrix(t)
	rep, err := RunMatrixOpts(m, RunOptions{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range m.Expand() {
		got := RunCell(c, CellOptions{})
		want := rep.Cells[i]
		got.OracleNs, got.EngineNs = 0, 0
		want.OracleNs, want.EngineNs = 0, 0
		if got != want {
			t.Fatalf("cell %d differs:\n RunCell:   %+v\n RunMatrix: %+v", i, got, want)
		}
	}
}

// mapCache is an in-memory LegCache for hit/miss accounting.
type mapCache struct {
	m    map[string]CachedLeg
	puts int
}

func (c *mapCache) key(cell Cell, faulty bool) string {
	return fmt.Sprintf("%s|%d|%d|%s|%d|%t", cell.Family.Name, cell.N, cell.Seed, cell.Protocol.Name, cell.Engine.Bandwidth, faulty)
}
func (c *mapCache) GetOracle(cell Cell, faulty bool) (CachedLeg, bool) {
	leg, ok := c.m[c.key(cell, faulty)]
	return leg, ok
}
func (c *mapCache) PutOracle(cell Cell, faulty bool, leg CachedLeg) {
	c.puts++
	c.m[c.key(cell, faulty)] = leg
}

// A warm oracle cache changes the oracle wall time to zero and nothing
// else; a miss populates the cache.
func TestRunCellOracleCache(t *testing.T) {
	cell := tinyMatrix(t).Expand()[0]
	cache := &mapCache{m: map[string]CachedLeg{}}
	cold := RunCell(cell, CellOptions{Cache: cache})
	if cache.puts != 1 {
		t.Fatalf("cold run stored %d entries, want 1", cache.puts)
	}
	warm := RunCell(cell, CellOptions{Cache: cache})
	if cache.puts != 1 {
		t.Fatalf("warm run stored again (%d puts)", cache.puts)
	}
	if warm.OracleNs != 0 {
		t.Fatalf("warm oracle leg recorded %dns, want 0 (cache hit)", warm.OracleNs)
	}
	cold.OracleNs, cold.EngineNs, warm.OracleNs, warm.EngineNs = 0, 0, 0, 0
	if cold != warm {
		t.Fatalf("cache changed the result:\n cold: %+v\n warm: %+v", cold, warm)
	}
}

// An impossible deadline makes both legs infra; the quarantine retries
// sleep exactly the backoff schedule through the injected hook.
func TestRunCellTimeoutRetriesWithBackoff(t *testing.T) {
	cell := tinyMatrix(t).Expand()[0]
	var slept []time.Duration
	base, cp := 10*time.Millisecond, 40*time.Millisecond
	res := RunCell(cell, CellOptions{
		Timeout:         time.Nanosecond,
		Retries:         2,
		RetryBackoff:    base,
		RetryBackoffCap: cp,
		Sleep:           func(d time.Duration) { slept = append(slept, d) },
	})
	if res.Outcome != OutcomeInfra {
		t.Fatalf("outcome %q, want infra under a 1ns deadline", res.Outcome)
	}
	// Two retries per leg, oracle then engine, same per-cell schedule.
	sched := []time.Duration{
		Backoff(base, cp, 1, cell.Seed, cellKey(cell)),
		Backoff(base, cp, 2, cell.Seed, cellKey(cell)),
	}
	want := append(append([]time.Duration{}, sched...), sched...)
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("sleep %d = %v, want %v", i, slept[i], want[i])
		}
	}
}

// BuildReport + Canonicalize reproduce the matrix runner's report
// modulo run-varying fields — the equivalence the scenariod server
// leans on to serve byte-identical reports from re-assembled cells.
func TestBuildReportCanonicalize(t *testing.T) {
	m := tinyMatrix(t)
	direct, err := RunMatrixOpts(m, RunOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	rebuilt := BuildReport(m, append([]CellResult(nil), direct.Cells...), "none")
	if rebuilt.Faults != "" {
		t.Fatalf("clean run recorded faults %q", rebuilt.Faults)
	}
	direct.Canonicalize()
	rebuilt.Canonicalize()
	a, err := json.Marshal(direct)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(rebuilt)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("canonical reports differ:\n direct:  %s\n rebuilt: %s", a, b)
	}
	if withFaults := BuildReport(m, direct.Cells, "drop=0.5"); withFaults.Faults != "drop=0.5" {
		t.Fatalf("faulted report records %q", withFaults.Faults)
	}
}

// LoadLedger reads back everything Append recorded — header binding,
// bookkeeping records, cell results — and Sync is safe to interleave.
func TestLedgerAppendLoadRoundtrip(t *testing.T) {
	m := tinyMatrix(t)
	cells := m.Expand()
	info := LedgerInfo{BaseSeed: m.BaseSeed, Faults: "none", Cells: len(cells)}
	path := filepath.Join(t.TempDir(), "run.jsonl")
	led, prior, _, err := OpenLedger(path, info)
	if err != nil {
		t.Fatal(err)
	}
	if len(prior) != 0 {
		t.Fatalf("fresh ledger has %d prior cells", len(prior))
	}
	if err := led.Append(LedgerRecord{T: RecSpec, Spec: json.RawMessage(`{"quick":true}`)}); err != nil {
		t.Fatal(err)
	}
	if err := led.Append(LedgerRecord{T: RecLease, Key: cells[0].Key(), Worker: "w1", Attempt: 1, DeadlineMs: 123456}); err != nil {
		t.Fatal(err)
	}
	led.Sync()
	if err := led.Append(LedgerRecord{T: RecHeartbeat, Key: cells[0].Key(), Worker: "w1"}); err != nil {
		t.Fatal(err)
	}
	cr := CellResult{Family: cells[0].Family.Name, N: cells[0].N, Engine: cells[0].Engine.Name,
		Protocol: cells[0].Protocol.Name, Seed: cells[0].Seed, Output: "out", Outcome: OutcomeOK}
	if err := led.AppendCell(cells[0].Key(), cr); err != nil {
		t.Fatal(err)
	}
	if err := led.Close(); err != nil {
		t.Fatal(err)
	}

	gotInfo, recs, err := LoadLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if gotInfo != info {
		t.Fatalf("loaded info %+v, want %+v", gotInfo, info)
	}
	types := map[string]int{}
	for _, rec := range recs {
		types[rec.T]++
	}
	for _, tt := range []string{RecSpec, RecLease, RecHeartbeat, RecCell} {
		if types[tt] != 1 {
			t.Fatalf("record types %v, want one of each", types)
		}
	}
	// Reopening resumes the recorded cell.
	led2, prior2, _, err := OpenLedger(path, info)
	if err != nil {
		t.Fatal(err)
	}
	defer led2.Close()
	if got, ok := prior2[cells[0].Key()]; !ok || got != cr {
		t.Fatalf("reopened prior: ok=%v got=%+v want=%+v", ok, got, cr)
	}
}
