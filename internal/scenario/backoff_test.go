package scenario

import (
	"testing"
	"time"

	"repro/internal/graph"
)

// Backoff is a pure function: capped exponential in the attempt, with
// deterministic jitter in [ceil/2, ceil] keyed by (seed, key, attempt).
func TestBackoffShape(t *testing.T) {
	base, cp := 100*time.Millisecond, time.Second
	for attempt := 1; attempt <= 8; attempt++ {
		d := Backoff(base, cp, attempt, 7, "cell-key")
		if d2 := Backoff(base, cp, attempt, 7, "cell-key"); d2 != d {
			t.Fatalf("attempt %d: not deterministic: %v vs %v", attempt, d, d2)
		}
		ceil := base << (attempt - 1)
		if ceil > cp || ceil <= 0 {
			ceil = cp
		}
		if d < ceil/2 || d > ceil {
			t.Fatalf("attempt %d: %v outside jitter window [%v, %v]", attempt, d, ceil/2, ceil)
		}
	}
}

// Different cells land on different points of the jitter window, so a
// fleet retrying after a shared brownout spreads out instead of
// stampeding in lockstep.
func TestBackoffJitterVariesByKey(t *testing.T) {
	base, cp := 100*time.Millisecond, 10*time.Second
	varies := false
	for attempt := 1; attempt <= 4 && !varies; attempt++ {
		varies = Backoff(base, cp, attempt, 7, "cell-a") != Backoff(base, cp, attempt, 7, "cell-b")
	}
	if !varies {
		t.Fatal("jitter identical across keys on every attempt")
	}
	varies = false
	for attempt := 1; attempt <= 4 && !varies; attempt++ {
		varies = Backoff(base, cp, attempt, 7, "cell-a") != Backoff(base, cp, attempt, 8, "cell-a")
	}
	if !varies {
		t.Fatal("jitter identical across seeds on every attempt")
	}
}

func TestBackoffEdges(t *testing.T) {
	if d := Backoff(0, time.Second, 5, 1, "k"); d != 0 {
		t.Fatalf("zero base: %v, want 0 (historical immediate retry)", d)
	}
	if d := Backoff(time.Millisecond, 0, 30, 1, "k"); d > 32*time.Millisecond {
		t.Fatalf("default cap: %v exceeds 32x base", d)
	}
	// Huge attempt counts must not overflow into a negative duration.
	if d := Backoff(time.Second, time.Minute, 400, 1, "k"); d < 0 || d > time.Minute {
		t.Fatalf("attempt 400: %v outside [0, cap]", d)
	}
}

// The quarantine retry loop sleeps exactly the Backoff schedule of the
// failing cell — asserted through the injected Sleep hook, no real
// sleeps anywhere (satellite: fake-clock/injected-sleep coverage).
func TestRunMatrixOptsRetryBackoffSchedule(t *testing.T) {
	m := syntheticMatrix(func(g *graph.Graph, bandwidth int, seed int64, leg Leg) (*LegResult, error) {
		if !leg.Oracle {
			panic("always failing")
		}
		return &LegResult{Output: "ok"}, nil
	})
	var slept []time.Duration
	base, cp := 10*time.Millisecond, 80*time.Millisecond
	rep, err := RunMatrixOpts(m, RunOptions{
		Shards:          1,
		Retries:         3,
		RetryBackoff:    base,
		RetryBackoffCap: cp,
		Sleep:           func(d time.Duration) { slept = append(slept, d) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if c := rep.Cells[0]; c.Outcome != OutcomeInfra || c.Attempts != 4 {
		t.Fatalf("cell: outcome=%q attempts=%d, want infra after 4 attempts", c.Outcome, c.Attempts)
	}
	cell := m.Expand()[0]
	want := []time.Duration{
		Backoff(base, cp, 1, cell.Seed, cellKey(cell)),
		Backoff(base, cp, 2, cell.Seed, cellKey(cell)),
		Backoff(base, cp, 3, cell.Seed, cellKey(cell)),
	}
	if len(slept) != len(want) {
		t.Fatalf("slept %d times (%v), want %d", len(slept), slept, len(want))
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("retry %d slept %v, want %v (schedule %v)", i+1, slept[i], want[i], want)
		}
	}
	// Zero backoff keeps the historical immediate retry: no sleeps.
	slept = nil
	if _, err := RunMatrixOpts(m, RunOptions{Shards: 1, Retries: 2,
		Sleep: func(d time.Duration) { slept = append(slept, d) }}); err != nil {
		t.Fatal(err)
	}
	if len(slept) != 0 {
		t.Fatalf("zero-backoff run slept %v", slept)
	}
}
