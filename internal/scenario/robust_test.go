package scenario

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/graph"
)

// faultTestMatrix is the trimmed fault sweep: the four hardened
// protocols over two families at one size, both engine configurations.
func faultTestMatrix(t *testing.T) *Matrix {
	t.Helper()
	m := DefaultMatrix(true, 1)
	m.Sizes = []int{12}
	if err := m.FilterFamilies("gnp,components"); err != nil {
		t.Fatal(err)
	}
	if err := m.FilterProtocols("connectivity,spanforest,routing,apsp"); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRunMatrixOptsZeroValueMatchesRunMatrix(t *testing.T) {
	m := testMatrix(t)
	m.Protocols = m.Protocols[:2]
	a := RunMatrix(m, 2)
	b, err := RunMatrixOpts(m, RunOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Cells) != len(b.Cells) {
		t.Fatalf("cell counts differ: %d vs %d", len(a.Cells), len(b.Cells))
	}
	for i := range a.Cells {
		ca, cb := a.Cells[i], b.Cells[i]
		ca.OracleNs, ca.EngineNs = 0, 0
		cb.OracleNs, cb.EngineNs = 0, 0
		if ca != cb {
			t.Fatalf("cell %d differs:\n  RunMatrix:     %+v\n  RunMatrixOpts: %+v", i, ca, cb)
		}
	}
}

// TestFaultSweepSafety is the harness-level safety invariant: under an
// active adversary every cell must end verified-correct (ok) or
// explicitly detected — never silently diverged, with zero tolerance.
func TestFaultSweepSafety(t *testing.T) {
	m := faultTestMatrix(t)
	spec, err := fault.ParseSpec("drop=0.02,corrupt=0.01")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunMatrixOpts(m, RunOptions{Shards: 4, Faults: spec})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Faults != spec.String() {
		t.Fatalf("report fault spec %q, want %q", rep.Faults, spec.String())
	}
	var ok int
	for _, c := range rep.Cells {
		switch c.Outcome {
		case OutcomeOK:
			ok++
		case OutcomeDetected:
			// The contracted fallback: a loud, attributed failure.
			if c.Error == "" {
				t.Errorf("detected cell %s/%s/%s carries no error detail", c.Family, c.Engine, c.Protocol)
			}
		default:
			t.Errorf("SAFETY VIOLATION %s n=%d %s %s: outcome %s: %s%s",
				c.Family, c.N, c.Engine, c.Protocol, c.Outcome, c.Error, c.Divergence)
		}
	}
	if ok == 0 {
		t.Fatal("no cell recovered under faults; hardening is not engaging")
	}
}

// TestFaultSweepDeterministicAcrossShards pins the replay guarantee at
// harness level: the same fault spec and matrix produce identical cell
// outcomes regardless of worker-pool width.
func TestFaultSweepDeterministicAcrossShards(t *testing.T) {
	m := faultTestMatrix(t)
	if err := m.FilterProtocols("connectivity,routing"); err != nil {
		t.Fatal(err)
	}
	spec := fault.Spec{Drop: 0.02, Corrupt: 0.01}
	var reps [2]*Report
	for i, shards := range []int{1, 4} {
		rep, err := RunMatrixOpts(m, RunOptions{Shards: shards, Faults: spec})
		if err != nil {
			t.Fatal(err)
		}
		reps[i] = rep
	}
	a, b := reps[0], reps[1]
	if len(a.Cells) != len(b.Cells) {
		t.Fatalf("cell counts differ: %d vs %d", len(a.Cells), len(b.Cells))
	}
	for i := range a.Cells {
		ca, cb := a.Cells[i], b.Cells[i]
		ca.OracleNs, ca.EngineNs = 0, 0
		cb.OracleNs, cb.EngineNs = 0, 0
		if ca != cb {
			t.Fatalf("cell %d differs across shard counts:\n  1 shard:  %+v\n  4 shards: %+v", i, ca, cb)
		}
	}
}

// stripTimings zeroes the fields that legitimately vary between runs.
func stripTimings(rep *Report) {
	rep.Date = ""
	rep.Shards = 0
	rep.Summary.WallNs = 0
	rep.Summary.OracleNs = 0
	rep.Summary.EngineNs = 0
	for i := range rep.Cells {
		rep.Cells[i].OracleNs = 0
		rep.Cells[i].EngineNs = 0
	}
}

// TestLedgerResume interrupts a run by keeping only a prefix of its
// ledger, resumes, and requires the resumed report to match the
// uninterrupted one cell for cell — recorded results (timings included)
// must flow through unchanged, and only the missing cells re-execute.
func TestLedgerResume(t *testing.T) {
	m := faultTestMatrix(t)
	if err := m.FilterProtocols("connectivity,routing"); err != nil {
		t.Fatal(err)
	}
	spec := fault.Spec{Drop: 0.02}
	dir := t.TempDir()

	full := filepath.Join(dir, "full.jsonl")
	want, err := RunMatrixOpts(m, RunOptions{Shards: 2, Faults: spec, Ledger: full})
	if err != nil {
		t.Fatal(err)
	}

	// Interrupt: header + half the entries, plus a torn final line.
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) < 4 {
		t.Fatalf("ledger has only %d lines", len(lines))
	}
	keep := lines[:1+(len(lines)-1)/2]
	torn := strings.Join(keep, "\n") + "\n" + lines[len(keep)][:10]
	partial := filepath.Join(dir, "partial.jsonl")
	if err := os.WriteFile(partial, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	got, err := RunMatrixOpts(m, RunOptions{Shards: 2, Faults: spec, Ledger: partial})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Cells) != len(want.Cells) {
		t.Fatalf("resumed run has %d cells, want %d", len(got.Cells), len(want.Cells))
	}
	resumedTimings := 0
	for i := range got.Cells {
		if got.Cells[i].OracleNs == want.Cells[i].OracleNs && got.Cells[i].EngineNs == want.Cells[i].EngineNs {
			resumedTimings++
		}
	}
	if half := (len(lines) - 1) / 2; resumedTimings < half {
		t.Errorf("only %d cells carried recorded timings through resume, want >= %d (ledgered cells must not re-execute)",
			resumedTimings, half)
	}
	stripTimings(want)
	stripTimings(got)
	for i := range got.Cells {
		if got.Cells[i] != want.Cells[i] {
			t.Fatalf("resumed cell %d differs:\n  uninterrupted: %+v\n  resumed:       %+v",
				i, want.Cells[i], got.Cells[i])
		}
	}

	// A completed ledger resumes to the same report without running
	// anything (every cell is recorded).
	again, err := RunMatrixOpts(m, RunOptions{Shards: 2, Faults: spec, Ledger: full})
	if err != nil {
		t.Fatal(err)
	}
	stripTimings(again)
	for i := range again.Cells {
		if again.Cells[i].Outcome != want.Cells[i].Outcome {
			t.Fatalf("fully-ledgered resume changed cell %d outcome %q -> %q",
				i, want.Cells[i].Outcome, again.Cells[i].Outcome)
		}
	}
}

// TestLedgerRejectsForeignRun: a ledger written under different options
// must refuse to resume rather than silently mix results.
func TestLedgerRejectsForeignRun(t *testing.T) {
	m := faultTestMatrix(t)
	if err := m.FilterProtocols("routing"); err != nil {
		t.Fatal(err)
	}
	m.Engines = m.Engines[:1]
	path := filepath.Join(t.TempDir(), "run.jsonl")
	if _, err := RunMatrixOpts(m, RunOptions{Shards: 2, Ledger: path}); err != nil {
		t.Fatal(err)
	}
	if _, err := RunMatrixOpts(m, RunOptions{Shards: 2, Faults: fault.Spec{Drop: 0.5}, Ledger: path}); err == nil {
		t.Fatal("ledger accepted a resume under a different fault spec")
	}
	m2 := faultTestMatrix(t)
	if err := m2.FilterProtocols("routing"); err != nil {
		t.Fatal(err)
	}
	m2.Engines = m2.Engines[:1]
	m2.BaseSeed = 999
	if _, err := RunMatrixOpts(m2, RunOptions{Shards: 2, Ledger: path}); err == nil {
		t.Fatal("ledger accepted a resume under a different base seed")
	}
}

// syntheticMatrix wraps a single custom protocol in a one-cell matrix.
func syntheticMatrix(run func(g *graph.Graph, bandwidth int, seed int64, leg Leg) (*LegResult, error)) *Matrix {
	return &Matrix{
		Families: []Family{{
			Name: "synthetic",
			Gen:  func(n int, seed int64) *graph.Graph { return graph.Complete(n) },
		}},
		Sizes:     []int{4},
		Engines:   []EngineConfig{{Name: "eng", Parallelism: 1, Bandwidth: 8}},
		Protocols: []Protocol{{Name: "probe", Run: run}},
		BaseSeed:  1,
	}
}

// TestGuardedLegCapturesPanic: an adapter panic becomes an infra cell,
// never a harness crash, and the quarantine retries are recorded.
func TestGuardedLegCapturesPanic(t *testing.T) {
	m := syntheticMatrix(func(g *graph.Graph, bandwidth int, seed int64, leg Leg) (*LegResult, error) {
		if !leg.Oracle {
			panic("synthetic adapter bug")
		}
		return &LegResult{Output: "ok"}, nil
	})
	rep, err := RunMatrixOpts(m, RunOptions{Shards: 1, Retries: 2})
	if err != nil {
		t.Fatal(err)
	}
	c := rep.Cells[0]
	if c.Outcome != OutcomeInfra {
		t.Fatalf("panicking leg classified %q, want infra (error %q, divergence %q)", c.Outcome, c.Error, c.Divergence)
	}
	if !strings.Contains(c.Error, "synthetic adapter bug") {
		t.Fatalf("infra error does not name the panic: %q", c.Error)
	}
	if c.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (wave + 2 quarantine retries)", c.Attempts)
	}
	if rep.ExitCode() != 4 {
		t.Fatalf("infra run exit code %d, want 4", rep.ExitCode())
	}
}

// TestGuardedLegTimeout: a wedged leg is abandoned at the deadline and
// classified infra.
func TestGuardedLegTimeout(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	m := syntheticMatrix(func(g *graph.Graph, bandwidth int, seed int64, leg Leg) (*LegResult, error) {
		if !leg.Oracle {
			<-block
		}
		return &LegResult{Output: "ok"}, nil
	})
	rep, err := RunMatrixOpts(m, RunOptions{Shards: 1, Timeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	c := rep.Cells[0]
	if c.Outcome != OutcomeInfra || !strings.Contains(c.Error, "timed out") {
		t.Fatalf("wedged leg classified %q (%q), want infra timeout", c.Outcome, c.Error)
	}
}

// TestQuarantineRetryRecovers: a leg that fails transiently (panics on
// its first attempt only) is healed by the quarantine retry and the cell
// lands ok with the attempt count recorded.
func TestQuarantineRetryRecovers(t *testing.T) {
	var mu sync.Mutex
	engineCalls := 0
	m := syntheticMatrix(func(g *graph.Graph, bandwidth int, seed int64, leg Leg) (*LegResult, error) {
		if !leg.Oracle {
			mu.Lock()
			engineCalls++
			first := engineCalls == 1
			mu.Unlock()
			if first {
				panic("transient")
			}
		}
		return &LegResult{Output: "ok"}, nil
	})
	rep, err := RunMatrixOpts(m, RunOptions{Shards: 1, Retries: 2})
	if err != nil {
		t.Fatal(err)
	}
	c := rep.Cells[0]
	if c.Outcome != OutcomeOK {
		t.Fatalf("transient failure classified %q (%q), want ok", c.Outcome, c.Error)
	}
	if c.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", c.Attempts)
	}
}

// TestDetectedClassification: an engine-leg protocol error under an
// active fault plan is the detected outcome (exit 3), not a divergence.
func TestDetectedClassification(t *testing.T) {
	m := syntheticMatrix(func(g *graph.Graph, bandwidth int, seed int64, leg Leg) (*LegResult, error) {
		if !leg.Oracle {
			return nil, errors.New("frame checksum mismatch (synthetic)")
		}
		return &LegResult{Output: "ok"}, nil
	})
	rep, err := RunMatrixOpts(m, RunOptions{Shards: 1, Faults: fault.Spec{Drop: 0.01}})
	if err != nil {
		t.Fatal(err)
	}
	c := rep.Cells[0]
	if c.Outcome != OutcomeDetected || c.Diverged {
		t.Fatalf("faulted protocol error classified %q (diverged=%v), want detected", c.Outcome, c.Diverged)
	}
	if rep.ExitCode() != 3 {
		t.Fatalf("detected-only run exit code %d, want 3", rep.ExitCode())
	}

	// The same error on a clean channel is a divergence (exit 1).
	rep2, err := RunMatrixOpts(m, RunOptions{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if c := rep2.Cells[0]; c.Outcome != OutcomeDiverged {
		t.Fatalf("clean-channel protocol error classified %q, want diverged", c.Outcome)
	}
	if rep2.ExitCode() != 1 {
		t.Fatalf("divergent run exit code %d, want 1", rep2.ExitCode())
	}
}

// TestSilentCorruptionIsDivergence: a faulted engine leg that ACCEPTS a
// wrong output is a divergence — the outcome the subsystem exists to
// rule out — and must outrank everything in the exit code.
func TestSilentCorruptionIsDivergence(t *testing.T) {
	m := syntheticMatrix(func(g *graph.Graph, bandwidth int, seed int64, leg Leg) (*LegResult, error) {
		if !leg.Oracle {
			return &LegResult{Output: "wrong"}, nil
		}
		return &LegResult{Output: "right"}, nil
	})
	rep, err := RunMatrixOpts(m, RunOptions{Shards: 1, Faults: fault.Spec{Drop: 0.01}})
	if err != nil {
		t.Fatal(err)
	}
	c := rep.Cells[0]
	if c.Outcome != OutcomeDiverged || !strings.Contains(c.Divergence, "SILENT CORRUPTION") {
		t.Fatalf("accepted wrong output classified %q (%q), want diverged with silent-corruption marker",
			c.Outcome, c.Divergence)
	}
	if rep.ExitCode() != 1 {
		t.Fatalf("silent corruption exit code %d, want 1", rep.ExitCode())
	}
}
