package scenario

import (
	"fmt"
	"testing"
)

// BenchmarkShardScaling sweeps the cell-shard worker count over a small
// filtered matrix — the scenario-runner leg of the engine scaling curve
// (scripts/bench.sh folds it into BENCH_<date>.json alongside the
// engine-level numbers). Each cell already runs two engine legs, so this
// measures end-to-end shard parallelism, not the round loop alone.
func BenchmarkShardScaling(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m := DefaultMatrix(true, 99)
				if err := m.FilterFamilies("gnp,components"); err != nil {
					b.Fatal(err)
				}
				if err := m.FilterProtocols("connectivity,triangle"); err != nil {
					b.Fatal(err)
				}
				rep := RunMatrix(m, shards)
				if s := rep.Summary; s.Divergences+s.Infra > 0 {
					b.Fatalf("shards=%d: %d divergences, %d infra failures", shards, s.Divergences, s.Infra)
				}
			}
		})
	}
}
