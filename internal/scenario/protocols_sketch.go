package scenario

import (
	"fmt"
	"hash/fnv"

	"repro/internal/graph"
	"repro/internal/sketch"
)

// mstWeightMax bounds the weight classes of the sketch MST protocol:
// every family's graphs get deterministic weights in [1, mstWeightMax]
// (one sketch stack per class, so the class count is deliberately small).
const mstWeightMax = 3

// legComponents picks the local connectivity reference of a leg: the
// union-find engine on the oracle leg, the word-parallel bitset BFS on
// engine legs — two independent implementations cross-checked through
// every cell.
func legComponents(g *graph.Graph, leg Leg) []int {
	if leg.Oracle {
		return sketch.UnionFindComponents(g)
	}
	return sketch.BFSComponents(g)
}

// labelsDigest canonically folds the component labeling alone — the
// quantity that is invariant under fault recovery (extra phases and
// alternative certificates are not).
func labelsDigest(res *sketch.CCResult) string {
	h := fnv.New64a()
	for _, l := range res.Leader {
		fmt.Fprintf(h, "%d;", l)
	}
	return fmt.Sprintf("labels=%016x", h.Sum64())
}

// ccDigest canonically folds a labeling and forest for the cell output.
func ccDigest(res *sketch.CCResult) string {
	h := fnv.New64a()
	for i, e := range res.Forest {
		fmt.Fprintf(h, "%d-%d", e[0], e[1])
		if res.Weights != nil {
			fmt.Fprintf(h, "w%d", res.Weights[i])
		}
		fmt.Fprint(h, ";")
	}
	return fmt.Sprintf("%s forest=%016x", labelsDigest(res), h.Sum64())
}

// sketchAgg picks a sketch protocol's aggregation for the leg: the
// framed, poison-tracking variant on faulted cells, the plain one
// otherwise. Both compute identical results on a clean channel, so the
// oracle leg of a faulted cell (clean + framed) still defines truth.
func sketchAgg(plain, framed sketch.Aggregation, leg Leg) sketch.Aggregation {
	if leg.Faulty {
		return framed
	}
	return plain
}

// checkCC is the certificate validation shared by every sketch cell:
// labeling against the leg's independent local reference, forest
// certificates strictly validated against the graph (real edges,
// acyclic, spanning exactly the claimed labeling).
func checkCC(name string, g *graph.Graph, res *sketch.CCResult, leg Leg) error {
	want := legComponents(g, leg)
	for v, l := range res.Leader {
		if l != want[v] {
			return fmt.Errorf("%s: vertex %d labeled %d, local reference says %d", name, v, l, want[v])
		}
	}
	if err := sketch.ValidateForest(g, res); err != nil {
		return err
	}
	return nil
}

// runConnectivity runs sketch-Borůvka connected components (direct
// stack aggregation) and checks the labeling against the leg's local
// reference engine.
func runConnectivity(g *graph.Graph, bandwidth int, seed int64, leg Leg) (*LegResult, error) {
	res, err := sketch.ConnectedComponents(g, sketchAgg(sketch.DirectAgg, sketch.DirectFramedAgg, leg), bandwidth, seed)
	if err != nil {
		return nil, err
	}
	if err := checkCC("connectivity", g, res, leg); err != nil {
		return nil, err
	}
	out := fmt.Sprintf("comps=%d phases=%d %s", res.Components, res.Phases, ccDigest(res))
	if leg.Faulty {
		// Recovery may burn extra phases and certify a different (still
		// validated) forest; the fault-stable output is the labeling.
		out = fmt.Sprintf("comps=%d %s", res.Components, labelsDigest(res))
	}
	return &LegResult{Output: out, Stats: res.Stats}, nil
}

// runSpanForest runs the Lenzen-routed aggregation variant (merged
// component sketches concentrate at leaders through the router) and
// validates the spanning-forest certificates strictly.
func runSpanForest(g *graph.Graph, bandwidth int, seed int64, leg Leg) (*LegResult, error) {
	res, err := sketch.SpanningForest(g, sketchAgg(sketch.LenzenAgg, sketch.LenzenFramedAgg, leg), bandwidth, seed)
	if err != nil {
		return nil, err
	}
	if err := checkCC("spanforest", g, res, leg); err != nil {
		return nil, err
	}
	if len(res.Forest) != g.N()-res.Components {
		return nil, fmt.Errorf("spanforest: %d certificates for %d components on %d vertices",
			len(res.Forest), res.Components, g.N())
	}
	out := fmt.Sprintf("comps=%d phases=%d edges=%d %s", res.Components, res.Phases, len(res.Forest), ccDigest(res))
	if leg.Faulty {
		out = fmt.Sprintf("comps=%d edges=%d %s", res.Components, len(res.Forest), labelsDigest(res))
	}
	return &LegResult{Output: out, Stats: res.Stats}, nil
}

// runSketchMST attaches deterministic weights in [1, mstWeightMax] to
// the cell's graph (exactly as the semiring protocols do) and computes a
// minimum spanning forest by weight-class sketch filtering, checked
// against a leg-chosen exact reference: Kruskal on the oracle leg, local
// non-sketch Borůvka on engine legs.
func runSketchMST(g *graph.Graph, bandwidth int, seed int64, leg Leg) (*LegResult, error) {
	wg := graph.WeightedFromSeed(g, seed, mstWeightMax)
	res, err := sketch.MST(wg, mstWeightMax, sketchAgg(sketch.LenzenAgg, sketch.LenzenFramedAgg, leg), bandwidth, seed)
	if err != nil {
		return nil, err
	}
	if err := sketch.ValidateForest(g, res); err != nil {
		return nil, err
	}
	var want *sketch.MSFResult
	if leg.Oracle {
		want = sketch.KruskalMSF(wg)
	} else {
		want = sketch.BoruvkaMSF(wg)
	}
	if res.TotalWeight != want.TotalWeight {
		return nil, fmt.Errorf("sketchmst: clique MSF weighs %d, local reference %d", res.TotalWeight, want.TotalWeight)
	}
	if len(res.Forest) != len(want.Forest) {
		return nil, fmt.Errorf("sketchmst: forest has %d edges, local reference %d", len(res.Forest), len(want.Forest))
	}
	for i, e := range res.Forest {
		if got := wg.Weight(e[0], e[1]); got != res.Weights[i] {
			return nil, fmt.Errorf("sketchmst: certificate {%d,%d} claims weight %d, graph says %d",
				e[0], e[1], res.Weights[i], got)
		}
	}
	out := fmt.Sprintf("weight=%d edges=%d phases=%d %s", res.TotalWeight, len(res.Forest), res.Phases, ccDigest(res))
	if leg.Faulty {
		// Every minimum spanning forest has the same total weight and
		// edge count, but a recovered run may certify a different one.
		out = fmt.Sprintf("weight=%d edges=%d %s", res.TotalWeight, len(res.Forest), labelsDigest(res))
	}
	return &LegResult{Output: out, Stats: res.Stats}, nil
}
