package scenario

import (
	"fmt"
	"hash/fnv"

	"repro/internal/graph"
	"repro/internal/sketch"
)

// mstWeightMax bounds the weight classes of the sketch MST protocol:
// every family's graphs get deterministic weights in [1, mstWeightMax]
// (one sketch stack per class, so the class count is deliberately small).
const mstWeightMax = 3

// legComponents picks the local connectivity reference of a leg: the
// union-find engine on the oracle leg, the word-parallel bitset BFS on
// engine legs — two independent implementations cross-checked through
// every cell.
func legComponents(g *graph.Graph, leg Leg) []int {
	if leg.Oracle {
		return sketch.UnionFindComponents(g)
	}
	return sketch.BFSComponents(g)
}

// ccDigest canonically folds a labeling and forest for the cell output.
func ccDigest(res *sketch.CCResult) string {
	h := fnv.New64a()
	for _, l := range res.Leader {
		fmt.Fprintf(h, "%d;", l)
	}
	labels := h.Sum64()
	h = fnv.New64a()
	for i, e := range res.Forest {
		fmt.Fprintf(h, "%d-%d", e[0], e[1])
		if res.Weights != nil {
			fmt.Fprintf(h, "w%d", res.Weights[i])
		}
		fmt.Fprint(h, ";")
	}
	return fmt.Sprintf("labels=%016x forest=%016x", labels, h.Sum64())
}

// runConnectivity runs sketch-Borůvka connected components (direct
// stack aggregation) and checks the labeling against the leg's local
// reference engine.
func runConnectivity(g *graph.Graph, bandwidth int, seed int64, leg Leg) (*LegResult, error) {
	res, err := sketch.ConnectedComponents(g, sketch.DirectAgg, bandwidth, seed)
	if err != nil {
		return nil, err
	}
	want := legComponents(g, leg)
	for v, l := range res.Leader {
		if l != want[v] {
			return nil, fmt.Errorf("connectivity: vertex %d labeled %d, local reference says %d", v, l, want[v])
		}
	}
	if err := sketch.ValidateForest(g, res); err != nil {
		return nil, err
	}
	return &LegResult{
		Output: fmt.Sprintf("comps=%d phases=%d %s", res.Components, res.Phases, ccDigest(res)),
		Stats:  res.Stats,
	}, nil
}

// runSpanForest runs the Lenzen-routed aggregation variant (merged
// component sketches concentrate at leaders through the router) and
// validates the spanning-forest certificates strictly.
func runSpanForest(g *graph.Graph, bandwidth int, seed int64, leg Leg) (*LegResult, error) {
	res, err := sketch.SpanningForest(g, sketch.LenzenAgg, bandwidth, seed)
	if err != nil {
		return nil, err
	}
	want := legComponents(g, leg)
	for v, l := range res.Leader {
		if l != want[v] {
			return nil, fmt.Errorf("spanforest: vertex %d labeled %d, local reference says %d", v, l, want[v])
		}
	}
	if len(res.Forest) != g.N()-res.Components {
		return nil, fmt.Errorf("spanforest: %d certificates for %d components on %d vertices",
			len(res.Forest), res.Components, g.N())
	}
	return &LegResult{
		Output: fmt.Sprintf("comps=%d phases=%d edges=%d %s", res.Components, res.Phases, len(res.Forest), ccDigest(res)),
		Stats:  res.Stats,
	}, nil
}

// runSketchMST attaches deterministic weights in [1, mstWeightMax] to
// the cell's graph (exactly as the semiring protocols do) and computes a
// minimum spanning forest by weight-class sketch filtering, checked
// against a leg-chosen exact reference: Kruskal on the oracle leg, local
// non-sketch Borůvka on engine legs.
func runSketchMST(g *graph.Graph, bandwidth int, seed int64, leg Leg) (*LegResult, error) {
	wg := graph.WeightedFromSeed(g, seed, mstWeightMax)
	res, err := sketch.MST(wg, mstWeightMax, sketch.LenzenAgg, bandwidth, seed)
	if err != nil {
		return nil, err
	}
	var want *sketch.MSFResult
	if leg.Oracle {
		want = sketch.KruskalMSF(wg)
	} else {
		want = sketch.BoruvkaMSF(wg)
	}
	if res.TotalWeight != want.TotalWeight {
		return nil, fmt.Errorf("sketchmst: clique MSF weighs %d, local reference %d", res.TotalWeight, want.TotalWeight)
	}
	if len(res.Forest) != len(want.Forest) {
		return nil, fmt.Errorf("sketchmst: forest has %d edges, local reference %d", len(res.Forest), len(want.Forest))
	}
	for i, e := range res.Forest {
		if got := wg.Weight(e[0], e[1]); got != res.Weights[i] {
			return nil, fmt.Errorf("sketchmst: certificate {%d,%d} claims weight %d, graph says %d",
				e[0], e[1], res.Weights[i], got)
		}
	}
	return &LegResult{
		Output: fmt.Sprintf("weight=%d edges=%d phases=%d %s", res.TotalWeight, len(res.Forest), res.Phases, ccDigest(res)),
		Stats:  res.Stats,
	}, nil
}
