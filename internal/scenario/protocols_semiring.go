package scenario

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/semiring"
)

// weightMax bounds the deterministic edge weights the semiring protocols
// attach to every family's graphs (weights live in [1, weightMax]).
const weightMax = 64

// legKernel selects the local block kernel the protocol body multiplies
// with: the ⊕/⊗ triple loop on the oracle leg, the backend's
// blocked/packed kernel on engine legs. Both legs' wire traffic must come
// out bit-identical, so a kernel bug is a scenario divergence.
func legKernel(sr semiring.Semiring, leg Leg) semiring.LocalMul {
	if leg.Oracle {
		return semiring.NaiveKernel(sr)
	}
	return semiring.Kernel(sr)
}

// runAPSP computes all-pairs shortest distances by repeated min-plus
// squaring over the row-broadcast MM protocol, with weights derived
// deterministically from the cell seed, and cross-checks the distance
// matrix against a leg-chosen local reference: Floyd–Warshall on the
// oracle leg, repeated local squaring through the naive (plain leg) or
// blocked (batch leg) kernel.
func runAPSP(g *graph.Graph, bandwidth int, seed int64, leg Leg) (*LegResult, error) {
	wg := graph.WeightedFromSeed(g, seed, weightMax)
	res, err := semiring.APSP(wg, semiring.Naive, bandwidth, seed, legKernel(semiring.MinPlus, leg))
	if err != nil {
		return nil, err
	}
	var want *semiring.Matrix
	switch {
	case leg.Oracle:
		want = semiring.FloydWarshall(wg)
	default:
		k := semiring.NaiveKernel(semiring.MinPlus)
		if leg.Batch {
			k = semiring.Kernel(semiring.MinPlus)
		}
		want = semiring.DistanceMatrix(wg)
		for s := 0; s < semiring.Squarings(g.N()); s++ {
			want = k(want, want)
		}
	}
	if !res.Product.Equal(want) {
		return nil, fmt.Errorf("apsp: clique distances differ from the local reference")
	}
	reach, sum := distanceDigest(res.Product)
	return &LegResult{
		Output: fmt.Sprintf("dist=%016x reach=%d sum=%d sq=%d", res.Product.Hash(), reach, sum, semiring.Squarings(g.N())),
		Stats:  res.Stats,
	}, nil
}

// khopK is the hop horizon of the distance-product protocol.
const khopK = 3

// runKHop computes the 3-hop distance product through the cube-partition
// MM protocol (Lenzen-routed redistribution under full accounting) and
// cross-checks against Bellman–Ford relaxation (oracle leg) or local
// distance products through the leg's kernel.
func runKHop(g *graph.Graph, bandwidth int, seed int64, leg Leg) (*LegResult, error) {
	wg := graph.WeightedFromSeed(g, seed, weightMax)
	res, err := semiring.KHopDistances(wg, khopK, semiring.Cube, bandwidth, seed, legKernel(semiring.MinPlus, leg))
	if err != nil {
		return nil, err
	}
	var want *semiring.Matrix
	if leg.Oracle {
		want = semiring.BellmanFordK(wg, khopK)
	} else {
		k := semiring.NaiveKernel(semiring.MinPlus)
		if leg.Batch {
			k = semiring.Kernel(semiring.MinPlus)
		}
		w := semiring.DistanceMatrix(wg)
		want = w.Clone()
		for t := 1; t < khopK; t++ {
			want = k(want, w)
		}
	}
	if !res.Product.Equal(want) {
		return nil, fmt.Errorf("khop: clique %d-hop distances differ from the local reference", khopK)
	}
	reach, sum := distanceDigest(res.Product)
	return &LegResult{
		Output: fmt.Sprintf("d%d=%016x reach=%d sum=%d", khopK, res.Product.Hash(), reach, sum),
		Stats:  res.Stats,
	}, nil
}

// runMatrixPower computes Boolean A²/A³ and counting A² on the clique and
// cross-checks every derived graph fact against an independent engine:
// triangle count against the word-parallel neighborhood intersection, C4
// against exhaustive subgraph search, and the power matrices against
// leg-chosen local products.
func runMatrixPower(g *graph.Graph, bandwidth int, seed int64, leg Leg) (*LegResult, error) {
	kern := semiring.Kernel
	if leg.Oracle {
		kern = semiring.NaiveKernel
	}
	res, err := semiring.MatrixPowerCounts(g, semiring.Naive, bandwidth, seed, kern)
	if err != nil {
		return nil, err
	}
	adj := semiring.AdjacencyMatrix(g)
	mulB := legKernel(semiring.Boolean, leg)
	mulC := legKernel(semiring.Counting, leg)
	if !res.Bool2.Equal(semiring.LocalPower(semiring.Boolean, adj, 2, mulB)) ||
		!res.Bool3.Equal(semiring.LocalPower(semiring.Boolean, adj, 3, mulB)) ||
		!res.Count2.Equal(semiring.LocalPower(semiring.Counting, adj, 2, mulC)) {
		return nil, fmt.Errorf("matpower: clique powers differ from the local reference")
	}
	if want := int64(g.CountTriangles()); res.Triangles != want {
		return nil, fmt.Errorf("matpower: tr(A³)/6 = %d, graph counts %d triangles", res.Triangles, want)
	}
	if want := graph.ContainsSubgraph(g, graph.Cycle(4)); res.HasC4 != want {
		return nil, fmt.Errorf("matpower: C4 = %v, exhaustive search says %v", res.HasC4, want)
	}
	return &LegResult{
		Output: fmt.Sprintf("reach2=%d reach3=%d tri=%d c4=%v",
			semiring.Ones(res.Bool2), semiring.Ones(res.Bool3), res.Triangles, res.HasC4),
		Stats: res.Stats,
	}, nil
}

// distanceDigest folds a distance matrix into its reachable-pair count
// and finite-distance sum (diagonal excluded).
func distanceDigest(d *semiring.Matrix) (reach int, sum int64) {
	for i := 0; i < d.Rows(); i++ {
		row := d.Row(i)
		for j, v := range row {
			if i == j || v == semiring.Inf {
				continue
			}
			reach++
			sum += int64(v)
		}
	}
	return reach, sum
}
