package scenario

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
)

// RunOptions extends the matrix run with the resilience knobs of the
// fault-injection harness. The zero value reproduces RunMatrix exactly.
type RunOptions struct {
	// Shards is the worker-pool width over cells; 0 = GOMAXPROCS.
	Shards int
	// Timeout is the per-leg deadline; 0 disables it. A timed-out leg's
	// goroutine is abandoned (the engine has no preemption), so timeouts
	// classify the cell as infra rather than waiting forever.
	Timeout time.Duration
	// Retries is how many times an infra-failed leg (panic, timeout) is
	// re-run in quarantine — sequentially, outside the parallel wave —
	// before the cell is recorded as infra.
	Retries int
	// RetryBackoff is the base pause before each quarantine retry:
	// attempt a sleeps Backoff(RetryBackoff, RetryBackoffCap, a, cell
	// seed, cell key) — capped exponential with deterministic jitter —
	// so retries of a transiently overloaded box spread out instead of
	// hammering it immediately. 0 keeps the historical immediate retry.
	RetryBackoff time.Duration
	// RetryBackoffCap clamps the retry backoff; 0 = 32·RetryBackoff.
	RetryBackoffCap time.Duration
	// Sleep is the pause hook used by the retry backoff; nil =
	// time.Sleep. Tests inject a recorder so backoff schedules are
	// asserted without real sleeps.
	Sleep func(time.Duration)
	// Faults is the adversary. When active, every cell runs with
	// Leg.Faulty set on both legs (hardened protocol variants,
	// fault-stable outputs) and the plan is installed as the core
	// package's default fault factory for the engine-leg passes only;
	// the oracle legs stay clean and define the expected outputs.
	Faults fault.Spec
	// Ledger is the path of an append-only JSONL run ledger. When set,
	// completed cells are recorded as each engine pass finishes, and a
	// re-run with the same matrix and options resumes: ledgered cells
	// are not re-executed and their recorded results (timings included)
	// flow into the final report unchanged, so an interrupted run
	// completes to a report identical to an uninterrupted one.
	Ledger string
	// TraceDir, when non-empty, archives an engine-trace/v1 NDJSON file
	// per engine-leg run under the directory (obs.DirSink naming:
	// trace-s<seed>.ndjson). Only the engine legs are traced — the
	// oracle legs stay untraced, exactly as they stay clean under
	// faults — and because tracing cannot change Outputs or Stats
	// (core's traced-vs-untraced invariant), a traced matrix classifies
	// identically to an untraced one.
	TraceDir string
}

// RunMatrixOpts is the resilient matrix runner: guarded legs (panic
// capture + optional deadline), quarantine retries, fault injection, and
// ledger resume on top of RunMatrix's differential pass structure. The
// only error source is the ledger (I/O, or a ledger written by a
// different run).
func RunMatrixOpts(m *Matrix, opt RunOptions) (*Report, error) {
	cells := m.Expand()
	// Shard resolution deliberately bypasses core.ResolveParallelism: the
	// package default is the *engine* parallelism knob (a -parallelism 1
	// oracle run must not collapse the cell pool to one shard).
	shards := opt.Shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	faulty := opt.Faults.Active()

	led, prior, err := openLedger(opt.Ledger, m, opt)
	if err != nil {
		return nil, err
	}
	if led != nil {
		defer led.Close()
	}

	results := make([]CellResult, len(cells))
	pending := make([]int, 0, len(cells))
	for i, c := range cells {
		if cr, ok := prior[cellKey(c)]; ok {
			results[i] = cr
		} else {
			pending = append(pending, i)
		}
	}

	prev := core.DefaultParallelism()
	defer core.SetDefaultParallelism(prev)

	wallStart := time.Now()
	oracle := make([]legOut, len(cells))
	engine := make([]legOut, len(cells))

	// Pass 1: the sequential scalar oracle leg of every pending cell,
	// always on a clean channel.
	core.SetDefaultParallelism(1)
	runWave(shards, pending, opt, cells, true, faulty, oracle)

	// Pass 2..k: engine legs grouped by configuration (the parallelism
	// default must not flip mid-pass), with the adversary installed for
	// exactly these passes when the run is faulted. Each configuration's
	// cells are classified — and ledgered — as its pass completes, so an
	// interrupted run resumes at engine-pass granularity.
	if faulty {
		prevF := core.SetDefaultFaultFactory(opt.Faults.Factory())
		defer core.SetDefaultFaultFactory(prevF)
	}
	if opt.TraceDir != "" {
		ds := obs.NewDirSink(opt.TraceDir)
		prevS := core.SetDefaultSinkFactory(ds.Factory())
		defer func() {
			core.SetDefaultSinkFactory(prevS)
			ds.Close()
		}()
	}
	for _, eng := range m.Engines {
		idx := make([]int, 0, len(pending))
		for _, i := range pending {
			if cells[i].Engine.Name == eng.Name {
				idx = append(idx, i)
			}
		}
		core.SetDefaultParallelism(eng.Parallelism)
		runWave(shards, idx, opt, cells, false, faulty, engine)
		for _, i := range idx {
			results[i] = classify(cells[i], oracle[i], engine[i], faulty)
			if led != nil {
				if err := led.AppendCell(cellKey(cells[i]), results[i]); err != nil {
					return nil, err
				}
			}
		}
	}

	rep := &Report{
		Schema:   ReportSchema,
		Date:     time.Now().Format("20060102"),
		BaseSeed: m.BaseSeed,
		Shards:   shards,
		Cells:    results,
	}
	if faulty {
		rep.Faults = opt.Faults.String()
	}
	rep.Summary = summarize(rep, m)
	rep.Summary.WallNs = time.Since(wallStart).Nanoseconds()
	return rep, nil
}

// runWave executes one pass's legs: a parallel wave over the worker
// pool, then quarantine rounds in which legs that failed on
// infrastructure (panic, timeout) are retried one at a time — isolated,
// so a cell that wedges a worker or trips a panic cannot take wave
// neighbors down with it. Protocol-level errors are never retried: they
// are deterministic by the replay guarantee and belong to the outcome
// classification, not the retry loop.
func runWave(shards int, idx []int, opt RunOptions, cells []Cell, oracleLeg, faulty bool, out []legOut) {
	if len(idx) == 0 {
		return
	}
	core.ParallelFor(shards, len(idx), func(k int) {
		out[idx[k]] = runLegGuarded(cells[idx[k]], oracleLeg, faulty, opt.Timeout)
	})
	sleep := opt.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	for attempt := 1; attempt <= opt.Retries; attempt++ {
		for _, i := range idx {
			if !out[i].infra {
				continue
			}
			if d := Backoff(opt.RetryBackoff, opt.RetryBackoffCap, attempt, cells[i].Seed, cellKey(cells[i])); d > 0 {
				sleep(d)
			}
			r := runLegGuarded(cells[i], oracleLeg, faulty, opt.Timeout)
			r.attempts = attempt + 1
			out[i] = r
		}
	}
}

// runLegGuarded wraps runLeg in a dedicated goroutine with panic capture
// and an optional deadline. Panics inside engine node bodies are already
// converted to node errors by core (see procNode.Step); this guard
// additionally catches panics in the adapter code and in local reference
// computations, and bounds the leg's wall time. A timed-out goroutine is
// abandoned, not cancelled — its writes land in its own legOut, which is
// discarded.
func runLegGuarded(c Cell, oracle, faulty bool, timeout time.Duration) legOut {
	ch := make(chan legOut, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- legOut{err: fmt.Errorf("leg panic: %v", r), infra: true, attempts: 1}
			}
		}()
		out := runLeg(c, oracle, faulty)
		out.attempts = 1
		ch <- out
	}()
	if timeout <= 0 {
		return <-ch
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case out := <-ch:
		return out
	case <-t.C:
		return legOut{err: fmt.Errorf("leg timed out after %v", timeout), infra: true, attempts: 1}
	}
}
