package scenario

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateList = flag.Bool("update", false, "rewrite testdata/list.golden from the current output")

// TestListGolden pins the `scenariorun -list` rendering of the full
// standing matrix: sorted families, engines, protocols, sizes and
// per-protocol coverage. Any drift here is either a new matrix dimension
// (rerun with -update, deliberately) or an ordering regression.
func TestListGolden(t *testing.T) {
	var buf bytes.Buffer
	DefaultMatrix(false, 1).WriteList(&buf)
	got := buf.String()

	path := filepath.Join("testdata", "list.golden")
	if *updateList {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("-list output drifted (intentional change? rerun with -update):\n--- golden ---\n%s--- got ---\n%s", want, got)
	}
}

// TestListSorted asserts the ordering property directly — the golden pin
// would also catch it, but this names the requirement.
func TestListSorted(t *testing.T) {
	m := DefaultMatrix(false, 1)
	var buf bytes.Buffer
	m.WriteList(&buf)
	lines := bytes.Split(buf.Bytes(), []byte("\n"))
	var section string
	var prev string
	for _, ln := range lines {
		s := string(ln)
		if len(s) == 0 {
			continue
		}
		if s[0] != ' ' {
			section, prev = s, ""
			continue
		}
		fields := bytes.Fields(ln)
		if len(fields) == 0 {
			continue
		}
		name := string(fields[0])
		if prev != "" && name < prev {
			t.Fatalf("section %q not sorted: %q after %q", section, name, prev)
		}
		prev = name
	}
}
