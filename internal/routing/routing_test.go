package routing

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/bits"
	"repro/internal/core"
)

// payloadFor builds a recognizable payload identifying (src, dst, k).
func payloadFor(src, dst, k, width int) *bits.Buffer {
	b := bits.New(3 * width)
	b.WriteUint(uint64(src), width)
	b.WriteUint(uint64(dst), width)
	b.WriteUint(uint64(k), width)
	return b
}

// runDemand routes `demand[src]` (lists of (dst,k) pairs) with the given
// router method and returns, per node, the sorted string forms of received
// messages.
func runDemand(t *testing.T, n, bandwidth int, demand [][][2]int, valiant bool) ([][]string, *core.Stats) {
	t.Helper()
	const width = 12
	rt := NewRouter(n)
	cfg := core.Config{N: n, Bandwidth: bandwidth, Model: core.Unicast, Seed: 5}
	res, err := core.RunProcs(cfg, func(p *core.Proc) error {
		var out []Msg
		for _, d := range demand[p.ID()] {
			out = append(out, Msg{
				Src:     p.ID(),
				Dst:     d[0],
				Payload: payloadFor(p.ID(), d[0], d[1], width),
			})
		}
		var (
			got []Msg
			err error
		)
		if valiant {
			got, err = rt.RouteValiant(p, out, 3*width)
		} else {
			got, err = rt.Route(p, out, 3*width)
		}
		if err != nil {
			return err
		}
		var lines []string
		for _, m := range got {
			r := bits.NewReader(m.Payload)
			src, _ := r.ReadUint(width)
			dst, _ := r.ReadUint(width)
			k, _ := r.ReadUint(width)
			if int(src) != m.Src || int(dst) != m.Dst || int(dst) != p.ID() {
				return fmt.Errorf("node %d got corrupted message src=%d/%d dst=%d/%d",
					p.ID(), src, m.Src, dst, m.Dst)
			}
			lines = append(lines, fmt.Sprintf("%d->%d#%d", src, dst, k))
		}
		sort.Strings(lines)
		p.SetOutput(lines)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	outs := make([][]string, n)
	for i, o := range res.Outputs {
		if o != nil {
			outs[i] = o.([]string)
		}
	}
	return outs, &res.Stats
}

// expect computes, per node, the sorted expected message strings.
func expect(n int, demand [][][2]int) [][]string {
	outs := make([][]string, n)
	for src := range demand {
		for _, d := range demand[src] {
			outs[d[0]] = append(outs[d[0]], fmt.Sprintf("%d->%d#%d", src, d[0], d[1]))
		}
	}
	for i := range outs {
		sort.Strings(outs[i])
	}
	return outs
}

func checkDelivery(t *testing.T, got, want [][]string) {
	t.Helper()
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("node %d received %d messages, want %d: %v vs %v",
				i, len(got[i]), len(want[i]), got[i], want[i])
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("node %d msg %d = %q, want %q", i, j, got[i][j], want[i][j])
			}
		}
	}
}

func TestRoutePermutation(t *testing.T) {
	const n = 8
	demand := make([][][2]int, n)
	for i := 0; i < n; i++ {
		demand[i] = [][2]int{{(i + 1) % n, 0}}
	}
	got, stats := runDemand(t, n, 64, demand, false)
	checkDelivery(t, got, expect(n, demand))
	// 1 class -> 1 subround per phase, 1 chunk each, plus the barrier.
	if stats.Rounds > 3 {
		t.Errorf("permutation routing took %d rounds, want <= 3", stats.Rounds)
	}
}

func TestRouteAllToAll(t *testing.T) {
	const n = 10
	demand := make([][][2]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			demand[i] = append(demand[i], [2]int{j, i*n + j})
		}
	}
	got, stats := runDemand(t, n, 64, demand, false)
	checkDelivery(t, got, expect(n, demand))
	// C <= 2n-1 -> <= 2 subrounds/phase -> <= 4 data rounds + barrier.
	if stats.Rounds > 5 {
		t.Errorf("all-to-all routing took %d rounds, want <= 5", stats.Rounds)
	}
	if stats.MaxLinkBits > 64 {
		t.Errorf("link load %d exceeds bandwidth", stats.MaxLinkBits)
	}
}

func TestRouteHotspot(t *testing.T) {
	// Node 0 sends 3 messages to each node; node 1 receives from everyone.
	const n = 6
	demand := make([][][2]int, n)
	for j := 1; j < n; j++ {
		demand[0] = append(demand[0], [2]int{j, 100 + j}, [2]int{j, 200 + j}, [2]int{j, 300 + j})
	}
	for i := 2; i < n; i++ {
		demand[i] = append(demand[i], [2]int{1, 400 + i})
	}
	got, _ := runDemand(t, n, 64, demand, false)
	checkDelivery(t, got, expect(n, demand))
}

func TestRouteEmptyDemand(t *testing.T) {
	const n = 4
	demand := make([][][2]int, n)
	got, _ := runDemand(t, n, 32, demand, false)
	for i := range got {
		if len(got[i]) != 0 {
			t.Errorf("node %d received phantom messages %v", i, got[i])
		}
	}
}

func TestRouteSelfMessages(t *testing.T) {
	const n = 3
	demand := make([][][2]int, n)
	for i := 0; i < n; i++ {
		demand[i] = [][2]int{{i, 7}}
	}
	got, stats := runDemand(t, n, 32, demand, false)
	checkDelivery(t, got, expect(n, demand))
	if stats.TotalBits != 0 {
		t.Errorf("self messages used %d network bits", stats.TotalBits)
	}
}

func TestRouteNarrowBandwidthChunks(t *testing.T) {
	// Bandwidth smaller than one message forces chunking.
	const n = 5
	demand := make([][][2]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				demand[i] = append(demand[i], [2]int{j, i + j})
			}
		}
	}
	got, stats := runDemand(t, n, 7, demand, false)
	checkDelivery(t, got, expect(n, demand))
	if stats.MaxLinkBits > 7 {
		t.Errorf("link load %d exceeds bandwidth 7", stats.MaxLinkBits)
	}
}

func TestRouteValiantAllToAll(t *testing.T) {
	const n = 9
	demand := make([][][2]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				demand[i] = append(demand[i], [2]int{j, i*n + j})
			}
		}
	}
	got, stats := runDemand(t, n, 64, demand, true)
	checkDelivery(t, got, expect(n, demand))
	if stats.MaxLinkBits > 64 {
		t.Errorf("link load %d exceeds bandwidth", stats.MaxLinkBits)
	}
}

func TestRouteValiantRandomDemands(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 5; trial++ {
		n := 4 + rng.Intn(6)
		demand := make([][][2]int, n)
		for i := 0; i < n; i++ {
			for k := 0; k < rng.Intn(n); k++ {
				demand[i] = append(demand[i], [2]int{rng.Intn(n), k})
			}
		}
		got, _ := runDemand(t, n, 48, demand, true)
		checkDelivery(t, got, expect(n, demand))
	}
}

func TestRouteRandomDemandsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 8; trial++ {
		n := 3 + rng.Intn(8)
		demand := make([][][2]int, n)
		for i := 0; i < n; i++ {
			for k := 0; k < rng.Intn(2*n); k++ {
				demand[i] = append(demand[i], [2]int{rng.Intn(n), trial*100 + k})
			}
		}
		got, _ := runDemand(t, n, 40, demand, false)
		checkDelivery(t, got, expect(n, demand))
	}
}

func TestRouteSequentialEpochs(t *testing.T) {
	const n = 4
	rt := NewRouter(n)
	cfg := core.Config{N: n, Bandwidth: 64, Model: core.Unicast}
	res, err := core.RunProcs(cfg, func(p *core.Proc) error {
		total := 0
		for epoch := 0; epoch < 3; epoch++ {
			out := []Msg{{
				Src:     p.ID(),
				Dst:     (p.ID() + 1 + epoch) % n,
				Payload: payloadFor(p.ID(), (p.ID()+1+epoch)%n, epoch, 12),
			}}
			if out[0].Dst == p.ID() {
				out = nil
			}
			got, err := rt.Route(p, out, 36)
			if err != nil {
				return err
			}
			total += len(got)
		}
		p.SetOutput(total)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, o := range res.Outputs {
		sum += o.(int)
	}
	// Each epoch delivers one message per node except self-skips: epochs
	// where (i+1+epoch)%n == i never happen for epoch<3, n=4 except epoch=3.
	if sum != 3*n {
		t.Errorf("total delivered = %d, want %d", sum, 3*n)
	}
}

func TestRouteErrors(t *testing.T) {
	const n = 3
	rt := NewRouter(n)
	cfg := core.Config{N: n, Bandwidth: 16, Model: core.Unicast}
	_, err := core.RunProcs(cfg, func(p *core.Proc) error {
		_, err := rt.Route(p, []Msg{{Src: (p.ID() + 1) % n, Dst: 0, Payload: bits.New(0)}}, 8)
		return err
	})
	if !errors.Is(err, ErrWrongSource) {
		t.Errorf("err = %v, want ErrWrongSource", err)
	}

	rt2 := NewRouter(n)
	_, err = core.RunProcs(cfg, func(p *core.Proc) error {
		long := bits.New(20)
		long.WriteUint(0, 20)
		_, err := rt2.Route(p, []Msg{{Src: p.ID(), Dst: 0, Payload: long}}, 8)
		return err
	})
	if !errors.Is(err, ErrPayloadTooLong) {
		t.Errorf("err = %v, want ErrPayloadTooLong", err)
	}

	rt3 := NewRouter(n)
	bcfg := core.Config{N: n, Bandwidth: 16, Model: core.Broadcast}
	_, err = core.RunProcs(bcfg, func(p *core.Proc) error {
		_, err := rt3.Route(p, nil, 8)
		return err
	})
	if !errors.Is(err, ErrModel) {
		t.Errorf("err = %v, want ErrModel", err)
	}
}

func TestGreedyColoringValidAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(10)
		e := &epoch{n: n}
		deg := make([]int, 2*n) // src degrees then dst degrees
		for i := 0; i < rng.Intn(4*n); i++ {
			src, dst := rng.Intn(n), rng.Intn(n)
			if src == dst {
				continue
			}
			e.msgs = append(e.msgs, Msg{Src: src, Dst: dst, Payload: bits.New(0)})
			deg[src]++
			deg[n+dst]++
		}
		maxDeg := 1
		for _, d := range deg {
			if d > maxDeg {
				maxDeg = d
			}
		}
		e.computeSchedule()
		if e.classes > 2*maxDeg-1 {
			t.Errorf("coloring used %d classes, bound is %d", e.classes, 2*maxDeg-1)
		}
		type key struct{ who, class int }
		seen := make(map[key]bool)
		for i, m := range e.msgs {
			c := e.color[i]
			if c < 0 {
				continue
			}
			if seen[key{m.Src, c}] {
				t.Fatalf("source %d has two messages in class %d", m.Src, c)
			}
			if seen[key{n + m.Dst, c}] {
				t.Fatalf("dest %d has two messages in class %d", m.Dst, c)
			}
			seen[key{m.Src, c}] = true
			seen[key{n + m.Dst, c}] = true
		}
	}
}

func TestRouteConstantRoundsAcrossN(t *testing.T) {
	// The Lenzen guarantee: balanced demands route in O(1) rounds
	// independent of n. Verify the round count does not grow with n.
	var rounds []int
	for _, n := range []int{4, 8, 16, 32} {
		demand := make([][][2]int, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j {
					demand[i] = append(demand[i], [2]int{j, 0})
				}
			}
		}
		_, stats := runDemand(t, n, 64, demand, false)
		rounds = append(rounds, stats.Rounds)
	}
	for i := 1; i < len(rounds); i++ {
		if rounds[i] > rounds[0]+1 {
			t.Errorf("rounds grew with n: %v", rounds)
		}
	}
}
