// Package routing implements O(1)-round routing of balanced message
// demands on the congested clique, standing in for Lenzen's deterministic
// routing algorithm (PODC 2013, reference [28] of the paper). The paper
// uses [28] as a black box: any demand in which every player is the source
// and the destination of at most n messages can be delivered in O(1)
// rounds.
//
// Two routers are provided:
//
//   - Router.Route: a deterministic 2-hop schedule. The demand multigraph
//     (sources x destinations, one edge per message) is greedily
//     edge-colored with at most 2Δ-1 classes; class c travels via
//     intermediate node c mod n, so each phase loads every directed link
//     with at most ceil(C/n) messages. The color schedule is computed by
//     the shared coordinator — standing in for the O(1)-round distributed
//     schedule agreement of [28], as documented in DESIGN.md §4.1 — while
//     every payload bit still crosses the simulated network under full
//     bandwidth enforcement.
//
//   - Router.RouteValiant: randomized 2-hop routing computed entirely
//     in-model (uniform random intermediates plus two in-band max-load
//     aggregation rounds), delivering balanced demands in O(1) rounds with
//     high probability.
package routing

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/bits"
	"repro/internal/core"
)

// Msg is one routed message.
type Msg struct {
	Src, Dst int
	Payload  *bits.Buffer
}

// Errors returned by the router.
var (
	ErrPayloadTooLong = errors.New("routing: payload exceeds declared maximum")
	ErrWrongSource    = errors.New("routing: message source is not the submitting node")
	ErrModel          = errors.New("routing: router requires the unicast clique model")
)

// Router coordinates routing epochs. All nodes of one run must share a
// single Router and must call Route (or RouteValiant) in the same round
// with the same maxPayloadBits.
type Router struct {
	n  int
	mu sync.Mutex
	ep *epoch
}

type epoch struct {
	mu        sync.Mutex
	msgs      []Msg
	submitted int
	n         int

	scheduleOnce sync.Once
	color        []int // color[i] = class of msgs[i]
	classes      int
}

// NewRouter returns a Router for an n-player clique.
func NewRouter(n int) *Router {
	return &Router{n: n}
}

// submit registers a node's outgoing messages and returns the epoch.
func (rt *Router) submit(p *core.Proc, out []Msg, maxPayloadBits int) (*epoch, error) {
	if p.Model() != core.Unicast {
		return nil, ErrModel
	}
	for _, m := range out {
		if m.Src != p.ID() {
			return nil, fmt.Errorf("%w: node %d submitted message from %d", ErrWrongSource, p.ID(), m.Src)
		}
		if m.Payload.Len() > maxPayloadBits {
			return nil, fmt.Errorf("%w: %d > %d bits", ErrPayloadTooLong, m.Payload.Len(), maxPayloadBits)
		}
		if m.Dst < 0 || m.Dst >= rt.n {
			return nil, fmt.Errorf("routing: destination %d out of range", m.Dst)
		}
	}
	rt.mu.Lock()
	if rt.ep == nil {
		rt.ep = &epoch{n: rt.n}
	}
	e := rt.ep
	rt.mu.Unlock()

	e.mu.Lock()
	e.msgs = append(e.msgs, out...)
	e.submitted++
	if e.submitted == rt.n {
		// Epoch closed; the next Route call begins a fresh one.
		rt.mu.Lock()
		rt.ep = nil
		rt.mu.Unlock()
	}
	e.mu.Unlock()
	return e, nil
}

// Route delivers all messages submitted this epoch and returns the ones
// destined to this node, ordered by (source, submission order). Every node
// must call Route in the same round, passing its own outgoing messages
// (possibly none) and the globally agreed maximum payload size in bits.
//
// Buffer ownership: submitted payloads are copied into relay frames, so
// the caller may Release them once Route returns — except self-addressed
// messages (Src == Dst), whose original payload is handed back in the
// result. Received payloads are drawn from the bits pool; callers on hot
// paths may Release them after consuming the bits.
//
// Round cost: 2 * ceil(C/n) * ceil((log2(n)+maxPayloadBits)/b) rounds,
// where C <= 2Δ-1 and Δ is the maximum number of messages any single node
// sends or receives. For Lenzen-balanced demands (Δ <= n) and bandwidth
// b >= log2(n)+maxPayloadBits this is at most 4 rounds.
func (rt *Router) Route(p *core.Proc, out []Msg, maxPayloadBits int) ([]Msg, error) {
	// Phase boundaries for round tracing (node 0 only — the repo's
	// convention for global markers; free when the run is untraced).
	if p.ID() == 0 {
		p.Annotate("route:submit")
	}
	e, err := rt.submit(p, out, maxPayloadBits)
	if err != nil {
		return nil, err
	}
	// Barrier: after this Next, every node has submitted.
	p.Next()
	e.scheduleOnce.Do(func() { e.computeSchedule() })

	n := rt.n
	w := bits.UintWidth(uint64(n - 1))
	subRounds := (e.classes + n - 1) / n
	chunk := core.ChunkRounds(w+maxPayloadBits, p.Bandwidth())

	// Per-call slices come from a pool: their lifetimes end when Route
	// returns, and Route runs once per player per routing epoch.
	//
	// myByClass indexes this node's messages by class (the coloring gives
	// each of them a distinct class); held is sized to subRounds*n so the
	// phase-2 read of class s*n+id is always in range even when that
	// class is empty.
	sc := scratchPool.Get().(*routeScratch)
	defer scratchPool.Put(sc)
	myByClass := sc.byClass(e.classes)
	held := sc.heldSlots(subRounds * n) // class -> messages held as intermediate
	perDst := sc.dsts(n)
	var local []Msg // self-addressed messages skip the network
	inDeg := 0
	for i, m := range e.msgs {
		if m.Dst == p.ID() {
			inDeg++
		}
		if m.Src != p.ID() {
			continue
		}
		if m.Dst == m.Src {
			local = append(local, m)
			continue
		}
		myByClass[e.color[i]] = &e.msgs[i]
	}

	// Phase 1: source -> intermediate (class c travels via node c mod n).
	if p.ID() == 0 {
		p.Annotate("route:spread")
	}
	var rd bits.Reader
	for s := 0; s < subRounds; s++ {
		for i := range perDst {
			perDst[i] = nil
		}
		for c := s * n; c < (s+1)*n && c < e.classes; c++ {
			m := myByClass[c]
			if m == nil {
				continue
			}
			inter := c % n
			if inter == p.ID() {
				held[c] = append(held[c], heldMsg{m: *m})
				continue
			}
			buf := bits.Get(w + m.Payload.Len())
			buf.WriteUint(uint64(m.Dst), w)
			buf.Append(m.Payload)
			perDst[inter] = buf
		}
		got, err := ExchangeUnicast(p, perDst, chunk)
		for _, b := range perDst {
			b.Release()
		}
		if err != nil {
			return nil, err
		}
		for src, buf := range got {
			if buf == nil {
				continue
			}
			rd.Reset(buf)
			dst64, err := rd.ReadUint(w)
			if err != nil || int(dst64) >= n {
				// Truncated or corrupted relay header — possible only under
				// fault injection, never on a clean channel. Treat the
				// message as lost instead of failing the epoch: absence is
				// what the protocol layer's frame validation detects.
				buf.Release()
				continue
			}
			payload, err := buf.Slice(w, buf.Len())
			if err != nil {
				return nil, err
			}
			buf.Release()
			c := s*n + p.ID()
			held[c] = append(held[c], heldMsg{m: Msg{Src: src, Dst: int(dst64), Payload: payload}, owned: true})
		}
	}

	// Phase 2: intermediate -> destination.
	if p.ID() == 0 {
		p.Annotate("route:deliver")
	}
	recv := make([]Msg, 0, inDeg)
	for s := 0; s < subRounds; s++ {
		for i := range perDst {
			perDst[i] = nil
		}
		c := s*n + p.ID()
		for _, h := range held[c] {
			m := h.m
			if m.Dst == p.ID() {
				recv = append(recv, m)
				continue
			}
			if perDst[m.Dst] != nil {
				// A corrupted phase-1 header collided with a legitimate
				// message's relay slot (clean-channel coloring guarantees
				// one message per destination per class). First wins; the
				// loser counts as lost in transit.
				if h.owned {
					m.Payload.Release()
				}
				continue
			}
			buf := bits.Get(w + m.Payload.Len())
			buf.WriteUint(uint64(m.Src), w)
			buf.Append(m.Payload)
			if h.owned {
				m.Payload.Release()
			}
			perDst[m.Dst] = buf
		}
		got, err := ExchangeUnicast(p, perDst, chunk)
		for _, b := range perDst {
			b.Release()
		}
		if err != nil {
			return nil, err
		}
		for _, buf := range got {
			if buf == nil {
				continue
			}
			rd.Reset(buf)
			src64, err := rd.ReadUint(w)
			if err != nil || int(src64) >= n {
				// Lost or corrupted relay header: drop, as in phase 1.
				buf.Release()
				continue
			}
			payload, err := buf.Slice(w, buf.Len())
			if err != nil {
				return nil, err
			}
			buf.Release()
			recv = append(recv, Msg{Src: int(src64), Dst: p.ID(), Payload: payload})
		}
	}
	recv = append(recv, local...)
	sort.Stable(msgsBySrc(recv))
	return recv, nil
}

// msgsBySrc sorts messages by source without reflection.
type msgsBySrc []Msg

func (m msgsBySrc) Len() int           { return len(m) }
func (m msgsBySrc) Less(i, j int) bool { return m[i].Src < m[j].Src }
func (m msgsBySrc) Swap(i, j int)      { m[i], m[j] = m[j], m[i] }

// heldMsg tracks payload ownership through the relay: payloads sliced out
// of phase-1 relay frames are pool-owned by the router and released once
// relayed; payloads held because this node is the intermediate of its own
// message belong to the caller and are never released.
type heldMsg struct {
	m     Msg
	owned bool
}

// routeScratch holds one Route call's fixed-size slices, recycled through
// scratchPool. Resizes keep capacity; acquired ranges are cleared before
// use.
type routeScratch struct {
	myByClass []*Msg
	held      [][]heldMsg
	perDst    []*bits.Buffer
}

var scratchPool = sync.Pool{New: func() interface{} { return new(routeScratch) }}

func (sc *routeScratch) byClass(n int) []*Msg {
	if cap(sc.myByClass) < n {
		sc.myByClass = make([]*Msg, n)
	}
	sc.myByClass = sc.myByClass[:n]
	for i := range sc.myByClass {
		sc.myByClass[i] = nil
	}
	return sc.myByClass
}

func (sc *routeScratch) heldSlots(n int) [][]heldMsg {
	if cap(sc.held) < n {
		sc.held = make([][]heldMsg, n)
	}
	sc.held = sc.held[:n]
	for i := range sc.held {
		sc.held[i] = sc.held[i][:0]
	}
	return sc.held
}

func (sc *routeScratch) dsts(n int) []*bits.Buffer {
	if cap(sc.perDst) < n {
		sc.perDst = make([]*bits.Buffer, n)
	}
	sc.perDst = sc.perDst[:n]
	for i := range sc.perDst {
		sc.perDst[i] = nil
	}
	return sc.perDst
}

// computeSchedule greedily edge-colors the demand multigraph. Messages are
// processed in a deterministic order; each takes the smallest class free at
// both endpoints, which uses at most 2Δ-1 classes.
func (e *epoch) computeSchedule() {
	idx := make([]int, len(e.msgs))
	for i := range idx {
		idx[i] = i
	}
	sort.Stable(&idxBySrcDst{idx: idx, msgs: e.msgs})
	e.color = make([]int, len(e.msgs))
	// Per-endpoint used-class bitsets (classes are small — at most 2Δ-1 —
	// so a few words per endpoint beat per-class maps).
	srcUsed := make([][]uint64, e.n)
	dstUsed := make([][]uint64, e.n)
	used := func(bs []uint64, c int) bool { return c>>6 < len(bs) && bs[c>>6]&(1<<uint(c&63)) != 0 }
	set := func(bs []uint64, c int) []uint64 {
		for c>>6 >= len(bs) {
			bs = append(bs, 0)
		}
		bs[c>>6] |= 1 << uint(c&63)
		return bs
	}
	maxClass := 0
	for _, i := range idx {
		m := e.msgs[i]
		if m.Src == m.Dst {
			e.color[i] = -1 // local, never scheduled
			continue
		}
		c := 0
		for used(srcUsed[m.Src], c) || used(dstUsed[m.Dst], c) {
			c++
		}
		srcUsed[m.Src] = set(srcUsed[m.Src], c)
		dstUsed[m.Dst] = set(dstUsed[m.Dst], c)
		e.color[i] = c
		if c+1 > maxClass {
			maxClass = c + 1
		}
	}
	if maxClass == 0 {
		maxClass = 1
	}
	e.classes = maxClass
}

// idxBySrcDst sorts a message-index permutation by (Src, Dst) without
// reflection.
type idxBySrcDst struct {
	idx  []int
	msgs []Msg
}

func (s *idxBySrcDst) Len() int { return len(s.idx) }
func (s *idxBySrcDst) Less(a, b int) bool {
	ma, mb := s.msgs[s.idx[a]], s.msgs[s.idx[b]]
	if ma.Src != mb.Src {
		return ma.Src < mb.Src
	}
	return ma.Dst < mb.Dst
}
func (s *idxBySrcDst) Swap(a, b int) { s.idx[a], s.idx[b] = s.idx[b], s.idx[a] }

// ExchangeUnicast sends perDst[d] (nil = nothing) to each d over exactly
// `rounds` rounds, chunked at the bandwidth, and returns the buffers
// received, indexed by source. Every node must call it simultaneously with
// the same round count. The staged buffers are copied at chunking time, so
// the caller may Release them afterwards; the returned buffers are drawn
// from the bits pool and may likewise be Released once consumed.
func ExchangeUnicast(p *core.Proc, perDst []*bits.Buffer, rounds int) ([]*bits.Buffer, error) {
	b := p.Bandwidth()
	acc := make([]*bits.Buffer, p.N())
	for r := 0; r < rounds; r++ {
		// Chunks are cut on the fly into arena buffers (Ctx.Msg): staged
		// in the same Step, sealed by Send, recycled by the engine one
		// round after delivery — never Released by this sender.
		for d, buf := range perDst {
			off := r * b
			if buf == nil || off >= buf.Len() {
				continue
			}
			end := off + b
			if end > buf.Len() {
				end = buf.Len()
			}
			chunk := p.Msg()
			if err := chunk.AppendRange(buf, off, end); err != nil {
				chunk.Release()
				return nil, err
			}
			if err := p.Send(d, chunk); err != nil {
				chunk.Release()
				return nil, err
			}
		}
		in := p.Next()
		for src, msg := range in {
			if msg == nil {
				continue
			}
			if acc[src] == nil {
				// A link carries at most rounds*b bits, so one hint-sized
				// grab avoids regrowth as chunks append.
				acc[src] = bits.Get(rounds * b)
			}
			acc[src].Append(msg)
		}
	}
	return acc, nil
}
