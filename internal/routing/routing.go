// Package routing implements O(1)-round routing of balanced message
// demands on the congested clique, standing in for Lenzen's deterministic
// routing algorithm (PODC 2013, reference [28] of the paper). The paper
// uses [28] as a black box: any demand in which every player is the source
// and the destination of at most n messages can be delivered in O(1)
// rounds.
//
// Two routers are provided:
//
//   - Router.Route: a deterministic 2-hop schedule. The demand multigraph
//     (sources x destinations, one edge per message) is greedily
//     edge-colored with at most 2Δ-1 classes; class c travels via
//     intermediate node c mod n, so each phase loads every directed link
//     with at most ceil(C/n) messages. The color schedule is computed by
//     the shared coordinator — standing in for the O(1)-round distributed
//     schedule agreement of [28], as documented in DESIGN.md §4.1 — while
//     every payload bit still crosses the simulated network under full
//     bandwidth enforcement.
//
//   - Router.RouteValiant: randomized 2-hop routing computed entirely
//     in-model (uniform random intermediates plus two in-band max-load
//     aggregation rounds), delivering balanced demands in O(1) rounds with
//     high probability.
package routing

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/bits"
	"repro/internal/core"
)

// Msg is one routed message.
type Msg struct {
	Src, Dst int
	Payload  *bits.Buffer
}

// Errors returned by the router.
var (
	ErrPayloadTooLong = errors.New("routing: payload exceeds declared maximum")
	ErrWrongSource    = errors.New("routing: message source is not the submitting node")
	ErrModel          = errors.New("routing: router requires the unicast clique model")
)

// Router coordinates routing epochs. All nodes of one run must share a
// single Router and must call Route (or RouteValiant) in the same round
// with the same maxPayloadBits.
type Router struct {
	n  int
	mu sync.Mutex
	ep *epoch
}

type epoch struct {
	mu        sync.Mutex
	msgs      []Msg
	submitted int
	n         int

	scheduleOnce sync.Once
	color        []int // color[i] = class of msgs[i]
	classes      int
}

// NewRouter returns a Router for an n-player clique.
func NewRouter(n int) *Router {
	return &Router{n: n}
}

// submit registers a node's outgoing messages and returns the epoch.
func (rt *Router) submit(p *core.Proc, out []Msg, maxPayloadBits int) (*epoch, error) {
	if p.Model() != core.Unicast {
		return nil, ErrModel
	}
	for _, m := range out {
		if m.Src != p.ID() {
			return nil, fmt.Errorf("%w: node %d submitted message from %d", ErrWrongSource, p.ID(), m.Src)
		}
		if m.Payload.Len() > maxPayloadBits {
			return nil, fmt.Errorf("%w: %d > %d bits", ErrPayloadTooLong, m.Payload.Len(), maxPayloadBits)
		}
		if m.Dst < 0 || m.Dst >= rt.n {
			return nil, fmt.Errorf("routing: destination %d out of range", m.Dst)
		}
	}
	rt.mu.Lock()
	if rt.ep == nil {
		rt.ep = &epoch{n: rt.n}
	}
	e := rt.ep
	rt.mu.Unlock()

	e.mu.Lock()
	e.msgs = append(e.msgs, out...)
	e.submitted++
	if e.submitted == rt.n {
		// Epoch closed; the next Route call begins a fresh one.
		rt.mu.Lock()
		rt.ep = nil
		rt.mu.Unlock()
	}
	e.mu.Unlock()
	return e, nil
}

// Route delivers all messages submitted this epoch and returns the ones
// destined to this node, ordered by (source, submission order). Every node
// must call Route in the same round, passing its own outgoing messages
// (possibly none) and the globally agreed maximum payload size in bits.
//
// Round cost: 2 * ceil(C/n) * ceil((log2(n)+maxPayloadBits)/b) rounds,
// where C <= 2Δ-1 and Δ is the maximum number of messages any single node
// sends or receives. For Lenzen-balanced demands (Δ <= n) and bandwidth
// b >= log2(n)+maxPayloadBits this is at most 4 rounds.
func (rt *Router) Route(p *core.Proc, out []Msg, maxPayloadBits int) ([]Msg, error) {
	e, err := rt.submit(p, out, maxPayloadBits)
	if err != nil {
		return nil, err
	}
	// Barrier: after this Next, every node has submitted.
	p.Next()
	e.scheduleOnce.Do(func() { e.computeSchedule() })

	n := rt.n
	w := bits.UintWidth(uint64(n - 1))
	subRounds := (e.classes + n - 1) / n
	chunk := core.ChunkRounds(w+maxPayloadBits, p.Bandwidth())

	// Local index of messages by class for phase 1.
	myByClass := make(map[int]Msg)
	var local []Msg // self-addressed messages skip the network
	for i, m := range e.msgs {
		if m.Src != p.ID() {
			continue
		}
		if m.Dst == m.Src {
			local = append(local, m)
			continue
		}
		myByClass[e.color[i]] = m
	}

	// Phase 1: source -> intermediate (class c travels via node c mod n).
	held := make(map[int][]Msg) // class -> messages held as intermediate
	for s := 0; s < subRounds; s++ {
		perDst := make([]*bits.Buffer, n)
		for c := s * n; c < (s+1)*n && c < e.classes; c++ {
			m, ok := myByClass[c]
			if !ok {
				continue
			}
			inter := c % n
			buf := bits.New(w + m.Payload.Len())
			buf.WriteUint(uint64(m.Dst), w)
			buf.Append(m.Payload)
			if inter == p.ID() {
				held[c] = append(held[c], m)
				continue
			}
			perDst[inter] = buf
		}
		got, err := ExchangeUnicast(p, perDst, chunk)
		if err != nil {
			return nil, err
		}
		for src, buf := range got {
			if buf == nil {
				continue
			}
			r := bits.NewReader(buf)
			dst64, err := r.ReadUint(w)
			if err != nil {
				return nil, fmt.Errorf("routing: bad phase-1 header from %d: %w", src, err)
			}
			payload, err := buf.Slice(w, buf.Len())
			if err != nil {
				return nil, err
			}
			c := s*n + p.ID()
			held[c] = append(held[c], Msg{Src: src, Dst: int(dst64), Payload: payload})
		}
	}

	// Phase 2: intermediate -> destination.
	var recv []Msg
	for s := 0; s < subRounds; s++ {
		perDst := make([]*bits.Buffer, n)
		c := s*n + p.ID()
		for _, m := range held[c] {
			if m.Dst == p.ID() {
				recv = append(recv, m)
				continue
			}
			buf := bits.New(w + m.Payload.Len())
			buf.WriteUint(uint64(m.Src), w)
			buf.Append(m.Payload)
			perDst[m.Dst] = buf
		}
		got, err := ExchangeUnicast(p, perDst, chunk)
		if err != nil {
			return nil, err
		}
		for _, buf := range got {
			if buf == nil {
				continue
			}
			r := bits.NewReader(buf)
			src64, err := r.ReadUint(w)
			if err != nil {
				return nil, fmt.Errorf("routing: bad phase-2 header: %w", err)
			}
			payload, err := buf.Slice(w, buf.Len())
			if err != nil {
				return nil, err
			}
			recv = append(recv, Msg{Src: int(src64), Dst: p.ID(), Payload: payload})
		}
	}
	recv = append(recv, local...)
	sort.SliceStable(recv, func(i, j int) bool { return recv[i].Src < recv[j].Src })
	return recv, nil
}

// computeSchedule greedily edge-colors the demand multigraph. Messages are
// processed in a deterministic order; each takes the smallest class free at
// both endpoints, which uses at most 2Δ-1 classes.
func (e *epoch) computeSchedule() {
	idx := make([]int, len(e.msgs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ma, mb := e.msgs[idx[a]], e.msgs[idx[b]]
		if ma.Src != mb.Src {
			return ma.Src < mb.Src
		}
		return ma.Dst < mb.Dst
	})
	e.color = make([]int, len(e.msgs))
	srcUsed := make([]map[int]bool, e.n)
	dstUsed := make([]map[int]bool, e.n)
	for i := 0; i < e.n; i++ {
		srcUsed[i] = make(map[int]bool)
		dstUsed[i] = make(map[int]bool)
	}
	maxClass := 0
	for _, i := range idx {
		m := e.msgs[i]
		if m.Src == m.Dst {
			e.color[i] = -1 // local, never scheduled
			continue
		}
		c := 0
		for srcUsed[m.Src][c] || dstUsed[m.Dst][c] {
			c++
		}
		srcUsed[m.Src][c] = true
		dstUsed[m.Dst][c] = true
		e.color[i] = c
		if c+1 > maxClass {
			maxClass = c + 1
		}
	}
	if maxClass == 0 {
		maxClass = 1
	}
	e.classes = maxClass
}

// exchangeUnicast sends perDst[d] (nil = nothing) to each d over exactly
// `rounds` rounds, chunked at the bandwidth, and returns the buffers
// received, indexed by source. Every node must call it simultaneously with
// the same round count.
func ExchangeUnicast(p *core.Proc, perDst []*bits.Buffer, rounds int) ([]*bits.Buffer, error) {
	b := p.Bandwidth()
	chunks := make([][]*bits.Buffer, len(perDst))
	for d, buf := range perDst {
		if buf != nil && buf.Len() > 0 {
			chunks[d] = buf.Chunks(b)
		}
	}
	acc := make([]*bits.Buffer, p.N())
	gotAny := make([]bool, p.N())
	for r := 0; r < rounds; r++ {
		for d := range chunks {
			if r < len(chunks[d]) {
				if err := p.Send(d, chunks[d][r]); err != nil {
					return nil, err
				}
				chunks[d][r].Release() // frozen delivery view keeps the bits alive
			}
		}
		in := p.Next()
		for src, msg := range in {
			if msg == nil {
				continue
			}
			if acc[src] == nil {
				acc[src] = bits.New(0)
			}
			acc[src].Append(msg)
			gotAny[src] = true
		}
	}
	out := make([]*bits.Buffer, p.N())
	for src := range acc {
		if gotAny[src] {
			out[src] = acc[src]
		}
	}
	return out, nil
}
