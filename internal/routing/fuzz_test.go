package routing

import (
	"fmt"
	"testing"

	"repro/internal/bits"
	"repro/internal/core"
)

// FuzzChunkReassembly drives the offset-addressed reassembly primitive
// the routed exchanges are built on (bits.ZeroExtend + OrRange over
// pooled chunks, as used by circsim's routed streams and ExchangeUnicast's
// chunk loop) against the direct copy: a fuzz-chosen payload is cut into
// bandwidth-sized chunks, the chunks are delivered in a fuzz-chosen
// (possibly out-of-order, offset-tagged) order, and the reassembled
// buffer must equal the original bit-for-bit — as must the in-order
// Append reassembly that ExchangeUnicast performs.
func FuzzChunkReassembly(f *testing.F) {
	f.Add([]byte{0xde, 0xad, 0xbe, 0xef}, 30, 7, uint16(3))
	f.Add([]byte{1}, 3, 1, uint16(0))
	f.Add([]byte{0xff, 0x00, 0xff, 0x00, 0x12}, 37, 64, uint16(9))
	f.Fuzz(func(t *testing.T, payload []byte, nbits, chunkBits int, rot uint16) {
		if nbits < 0 || nbits > 8*len(payload) {
			nbits = 8 * len(payload)
		}
		if chunkBits <= 0 || chunkBits > 1<<12 {
			chunkBits = 1 + (-chunkBits&7)*8
		}
		src, err := bits.FromBits(payload, nbits)
		if err != nil {
			t.Fatal(err)
		}

		// Cut: one pooled chunk per bandwidth window, like the senders do.
		type tagged struct {
			off   int
			chunk *bits.Buffer
		}
		var chunks []tagged
		for off := 0; off < src.Len(); off += chunkBits {
			end := off + chunkBits
			if end > src.Len() {
				end = src.Len()
			}
			c := bits.Get(end - off)
			if err := c.AppendRange(src, off, end); err != nil {
				t.Fatal(err)
			}
			chunks = append(chunks, tagged{off, c})
		}

		// Deliver out of order: rotate the chunk sequence by `rot`.
		if n := len(chunks); n > 1 {
			r := int(rot) % n
			rotated := append(append([]tagged(nil), chunks[r:]...), chunks[:r]...)

			dst := bits.Get(src.Len())
			dst.ZeroExtend(src.Len())
			for _, tc := range rotated {
				if err := dst.OrRange(tc.chunk, 0, tc.chunk.Len(), tc.off); err != nil {
					t.Fatal(err)
				}
			}
			if !dst.Equal(src) {
				t.Fatalf("offset-addressed reassembly differs:\n src %s\n got %s", src, dst)
			}
			dst.Release()
		}

		// In-order Append reassembly (the ExchangeUnicast receive loop).
		acc := bits.Get(src.Len())
		for _, tc := range chunks {
			acc.Append(tc.chunk)
		}
		if !acc.Equal(src) {
			t.Fatalf("append reassembly differs:\n src %s\n got %s", src, acc)
		}
		acc.Release()
		for _, tc := range chunks {
			tc.chunk.Release()
		}
	})
}

// FuzzExchangeUnicast pushes fuzz-chosen per-destination payloads through
// the real chunked exchange on a 4-node clique and checks every receiver
// got exactly the sender's bits.
func FuzzExchangeUnicast(f *testing.F) {
	f.Add([]byte{0xaa, 0xbb, 0xcc}, 5)
	f.Add([]byte{}, 1)
	f.Fuzz(func(t *testing.T, seedBytes []byte, bandwidth int) {
		if bandwidth <= 0 || bandwidth > 256 {
			bandwidth = 1 + (-bandwidth & 63)
		}
		const n = 4
		// payload u -> v: seedBytes rotated by (u+v), (u*7+v*3) bits long.
		// Returns any FromBits error instead of failing the test: the
		// closure runs inside engine worker goroutines, where t.Fatal is
		// off-limits.
		payload := func(u, v int) (*bits.Buffer, error) {
			ln := (u*7 + v*3) % (8*len(seedBytes) + 1)
			if len(seedBytes) == 0 {
				ln = 0
			}
			rot := append(append([]byte(nil), seedBytes[(u+v)%max(1, len(seedBytes)):]...),
				seedBytes[:(u+v)%max(1, len(seedBytes))]...)
			return bits.FromBits(rot, ln)
		}
		maxLen := 8 * len(seedBytes)
		rounds := (maxLen + bandwidth - 1) / bandwidth
		if rounds == 0 {
			rounds = 1
		}
		runFuzzExchange(t, n, bandwidth, rounds, payload)
	})
}

// FuzzFaultFrame drives corrupted frames through the checksum decoder
// and asserts the detection guarantee EncodeFrame/DecodeFrame document:
// an intact frame round-trips exactly, and ANY corruption of 1–3 bit
// flips is rejected — never mis-accepted. Up to 3 flips the guarantee is
// a theorem (structural length check + CRC-32/IEEE Hamming distance 4
// through 91,607 bits), so this fuzz target can never legitimately fail
// and any crash or mis-accept it finds is a real decoder bug.
func FuzzFaultFrame(f *testing.F) {
	f.Add([]byte{0xde, 0xad, 0xbe, 0xef}, 30, uint32(3), uint32(17), uint32(44), uint8(3))
	f.Add([]byte{}, 0, uint32(0), uint32(1), uint32(2), uint8(1))
	f.Add([]byte{0xff}, 8, uint32(5), uint32(5), uint32(5), uint8(2))
	f.Fuzz(func(t *testing.T, payload []byte, nbits int, p1, p2, p3 uint32, nflips uint8) {
		if nbits < 0 || nbits > 8*len(payload) {
			nbits = 8 * len(payload)
		}
		if nbits > 1<<12 {
			nbits = 1 << 12
		}
		src, err := bits.FromBits(payload, nbits)
		if err != nil {
			t.Fatal(err)
		}
		frame, err := EncodeFrame(src)
		if err != nil {
			t.Fatal(err)
		}

		// Intact round-trip.
		got, err := DecodeFrame(frame)
		if err != nil {
			t.Fatalf("intact frame rejected: %v", err)
		}
		if !got.Equal(src) {
			t.Fatal("intact frame decoded to different payload")
		}

		// 1..3 distinct flips must all be detected.
		want := 1 + int(nflips)%3
		seen := map[int]bool{}
		bad := frame.Clone()
		for _, p := range []uint32{p1, p2, p3}[:want] {
			pos := int(p) % frame.Len()
			if seen[pos] {
				continue // colliding positions would cancel; keep flips distinct
			}
			seen[pos] = true
			bad.FlipBit(pos)
		}
		if len(seen) == 0 {
			return
		}
		if _, err := DecodeFrame(bad); err == nil {
			t.Fatalf("frame with %d flipped bits accepted (positions %v)", len(seen), seen)
		}
	})
}

// runFuzzExchange runs ExchangeUnicast on an n-clique where node u ships
// payload(u, v) to every v != u, and asserts exact delivery. Node bodies
// run on engine worker goroutines, so failures propagate as errors.
func runFuzzExchange(t *testing.T, n, bandwidth, rounds int, payload func(u, v int) (*bits.Buffer, error)) {
	t.Helper()
	cfg := core.Config{N: n, Bandwidth: bandwidth, Model: core.Unicast, Seed: 11}
	_, err := core.RunProcs(cfg, func(p *core.Proc) error {
		me := p.ID()
		perDst := make([]*bits.Buffer, n)
		for v := 0; v < n; v++ {
			if v != me {
				var err error
				if perDst[v], err = payload(me, v); err != nil {
					return err
				}
			}
		}
		got, err := ExchangeUnicast(p, perDst, rounds)
		if err != nil {
			return err
		}
		for src := 0; src < n; src++ {
			if src == me {
				continue
			}
			want, err := payload(src, me)
			if err != nil {
				return err
			}
			g := got[src]
			if g == nil {
				g = bits.New(0)
			}
			if !g.Equal(want) {
				return fmt.Errorf("node %d: stream from %d is %q, want %q", me, src, g.String(), want.String())
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
