package routing

import (
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/bits"
	"repro/internal/core"
)

// Wire frame layout: [len:16][crc32:32][payload:len bits]. The length
// field is validated structurally (a frame's total bit count must equal
// FrameOverheadBits+len exactly) and the payload is covered by CRC-32
// (IEEE), so the two checks together detect every corruption of up to 3
// bit flips anywhere in the frame: flips touching the length field break
// the structural equation, and CRC-32/IEEE has Hamming distance 4 for
// all codeword lengths through 91,607 bits — far above the 65,567-bit
// maximum frame body. FuzzFaultFrame pins exactly this guarantee.
const (
	frameLenBits = 16
	frameCRCBits = 32

	// FrameOverheadBits is the fixed per-frame header cost in bits.
	FrameOverheadBits = frameLenBits + frameCRCBits

	// MaxFramePayloadBits is the largest payload a single frame can carry.
	MaxFramePayloadBits = 1<<frameLenBits - 1
)

var (
	// ErrCorruptFrame reports a frame that failed its length or checksum
	// validation — the *detected* outcome of wire corruption.
	ErrCorruptFrame = errors.New("routing: corrupt frame (length or checksum mismatch)")

	// ErrUnacked reports a reliable stream whose sender exhausted every
	// attempt without seeing the receiver's acknowledgment.
	ErrUnacked = errors.New("routing: reliable stream unacknowledged after all attempts")
)

// FrameBits returns the wire size of a frame carrying payloadBits bits.
func FrameBits(payloadBits int) int { return FrameOverheadBits + payloadBits }

// EncodeFrame wraps a payload in a checksummed, length-prefixed frame.
func EncodeFrame(payload *bits.Buffer) (*bits.Buffer, error) {
	n := payload.Len()
	if n > MaxFramePayloadBits {
		return nil, fmt.Errorf("%w: %d bits exceed the %d-bit frame limit",
			ErrPayloadTooLong, n, MaxFramePayloadBits)
	}
	f := bits.New(FrameOverheadBits + n)
	f.WriteUint(uint64(n), frameLenBits)
	f.WriteUint(uint64(crc32.ChecksumIEEE(payload.Bytes())), frameCRCBits)
	f.Append(payload)
	return f, nil
}

// DecodeFrame validates a frame and returns its payload, or
// ErrCorruptFrame. The frame must be exactly its declared size — framed
// streams carry no slack, so truncation, extension, and every corruption
// of up to 3 flipped bits are all detected (see the layout comment).
func DecodeFrame(frame *bits.Buffer) (*bits.Buffer, error) {
	if frame.Len() < FrameOverheadBits {
		return nil, fmt.Errorf("%w: %d bits is shorter than a frame header", ErrCorruptFrame, frame.Len())
	}
	// No r.Release() here: that would return the caller's frame to the
	// buffer pool along with the reader.
	r := bits.NewReader(frame)
	n, err := r.ReadUint(frameLenBits)
	if err != nil {
		return nil, err
	}
	want, err := r.ReadUint(frameCRCBits)
	if err != nil {
		return nil, err
	}
	if frame.Len() != FrameOverheadBits+int(n) {
		return nil, fmt.Errorf("%w: header declares %d payload bits, frame carries %d",
			ErrCorruptFrame, n, frame.Len()-FrameOverheadBits)
	}
	payload, err := frame.Slice(FrameOverheadBits, frame.Len())
	if err != nil {
		return nil, err
	}
	if uint64(crc32.ChecksumIEEE(payload.Bytes())) != want {
		return nil, fmt.Errorf("%w: checksum mismatch over %d payload bits", ErrCorruptFrame, n)
	}
	return payload, nil
}

// ScanFrame decodes the frame starting at bit offset pos of a stream of
// concatenated frames. On success it returns the validated payload and
// the offset of the next frame. On failure the stream cannot be
// advanced — the length field that would say where the next frame
// starts is itself untrusted — so callers must stop scanning and treat
// everything from pos on as lost.
func ScanFrame(stream *bits.Buffer, pos int) (*bits.Buffer, int, error) {
	if pos < 0 || pos+FrameOverheadBits > stream.Len() {
		return nil, 0, fmt.Errorf("%w: no frame header at offset %d", ErrCorruptFrame, pos)
	}
	hdr, err := stream.Slice(pos, pos+frameLenBits)
	if err != nil {
		return nil, 0, err
	}
	n, err := bits.NewReader(hdr).ReadUint(frameLenBits)
	if err != nil {
		return nil, 0, err
	}
	end := pos + FrameOverheadBits + int(n)
	if end > stream.Len() {
		return nil, 0, fmt.Errorf("%w: frame at offset %d overruns the stream", ErrCorruptFrame, pos)
	}
	frame, err := stream.Slice(pos, end)
	if err != nil {
		return nil, 0, err
	}
	payload, err := DecodeFrame(frame)
	if err != nil {
		return nil, 0, err
	}
	return payload, end, nil
}

// ReliableOpts tunes the ack/retransmit schedule of SendReliable /
// RecvReliable. The zero value picks the defaults.
type ReliableOpts struct {
	MaxAttempts int // transmission attempts; default 4
	BackoffCap  int // cap on per-attempt backoff idle rounds; default 8
}

func (o ReliableOpts) resolve() ReliableOpts {
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 4
	}
	if o.BackoffCap <= 0 {
		o.BackoffCap = 8
	}
	return o
}

// ReliableRounds returns the data-phase round count both ends of a
// reliable stream must pass for a payload of payloadBits bits at link
// bandwidth b.
func ReliableRounds(payloadBits, b int) int {
	return core.ChunkRounds(FrameBits(payloadBits), b)
}

// backoff returns attempt a's idle-round count: capped exponential.
func (o ReliableOpts) backoff(a int) int {
	n := 1 << uint(a)
	if n > o.BackoffCap || n <= 0 {
		n = o.BackoffCap
	}
	return n
}

// SendReliable streams a framed payload to dst with ack/retransmit over
// a FIXED round schedule: MaxAttempts repetitions of (data phase of
// `rounds` rounds, 1 ack round, capped-exponential backoff idle rounds).
// The schedule never exits early — the two-generals obstacle means the
// receiver can never learn that its ack arrived, so both ends always
// walk the full schedule and stay in lockstep; what shrinks on the happy
// path is BITS, not rounds: after the sender sees an ack it stops
// retransmitting, and idle rounds in which no node sends anything are
// not counted by Stats.Rounds. Under faults, retransmissions scale the
// bit cost with the fault rate — E17's recovery-overhead curve.
//
// It returns ErrUnacked when every attempt's ack was lost; the payload
// may still have arrived (the receiver's own return value is
// authoritative on that side). Corrupted or partially-dropped attempts
// are rejected by the receiver's frame validation, never mis-accepted.
func SendReliable(p *core.Proc, dst int, payload *bits.Buffer, rounds int, opt ReliableOpts) error {
	opt = opt.resolve()
	frame, err := EncodeFrame(payload)
	if err != nil {
		return err
	}
	if frame.Len() > rounds*p.Bandwidth() {
		return fmt.Errorf("%w: frame of %d bits exceeds %d rounds * %d bits",
			ErrPayloadTooLong, frame.Len(), rounds, p.Bandwidth())
	}
	acked := false
	for a := 0; a < opt.MaxAttempts; a++ {
		if acked {
			// Stay in lockstep without spending bits.
			for r := 0; r < rounds+1+opt.backoff(a); r++ {
				p.Next()
			}
			continue
		}
		if err := core.SendChunked(p, dst, frame, rounds); err != nil {
			return err
		}
		in := p.Next() // ack round
		if msg := in[dst]; msg != nil && msg.Len() == 1 {
			if v, err := bits.NewReader(msg).ReadBit(); err == nil && v == 1 {
				acked = true
			}
		}
		for r := 0; r < opt.backoff(a); r++ {
			p.Next()
		}
	}
	if !acked {
		return ErrUnacked
	}
	return nil
}

// RecvReliable is SendReliable's receiving end; both sides must pass the
// same rounds and opts. Every attempt retransmits the identical frame on
// the identical chunk-per-round schedule, so the receiver assembles two
// candidate frames and accepts whichever validates first:
//
//   - Cumulative: data round r of any attempt carries chunk r, so a
//     chunk that survives ANY attempt fills slot r (first arrival wins).
//     Per-chunk loss probability decays exponentially with attempts —
//     without this, an attempt succeeds only if ALL its chunks survive,
//     which decays exponentially with payload length instead.
//   - Fresh: each attempt's arrivals alone, covering the case where a
//     delayed or duplicated chunk landed in the wrong slot and poisoned
//     the cumulative assembly.
//
// Both assemblies pass through DecodeFrame, so misfiled, corrupted, or
// missing chunks can only yield a failed attempt, never a silently wrong
// payload. Once a frame validates, the receiver acks (1 bit) in every
// remaining ack round — acks themselves may be lost, which the sender
// covers by retransmitting into attempts the receiver then ignores.
// Returns ErrCorruptFrame if no attempt produced a valid frame.
func RecvReliable(p *core.Proc, src int, rounds int, opt ReliableOpts) (*bits.Buffer, error) {
	opt = opt.resolve()
	var payload *bits.Buffer
	slots := make([]*bits.Buffer, rounds)
	for a := 0; a < opt.MaxAttempts; a++ {
		acc := bits.New(0)
		for r := 0; r < rounds; r++ {
			in := p.Next()
			if msg := in[src]; msg != nil {
				acc.Append(msg)
				if slots[r] == nil {
					slots[r] = msg // frozen delivery view; safe to retain
				}
			}
		}
		if payload == nil {
			if got, err := DecodeFrame(acc); err == nil {
				payload = got
			}
		}
		if payload == nil {
			if cum := assembleSlots(slots); cum != nil {
				if got, err := DecodeFrame(cum); err == nil {
					payload = got
				}
			}
		}
		if payload != nil {
			ack := bits.New(1)
			ack.WriteBit(1)
			if err := p.Send(src, ack); err != nil {
				return nil, err
			}
		}
		p.Next() // ack round
		for r := 0; r < opt.backoff(a); r++ {
			p.Next()
		}
	}
	if payload == nil {
		return nil, fmt.Errorf("%w: no valid frame in %d attempts", ErrCorruptFrame, opt.MaxAttempts)
	}
	return payload, nil
}

// assembleSlots concatenates the cumulative chunk slots into a candidate
// frame, or returns nil while a gap remains below the highest-filled
// slot (trailing nil slots are fine — the frame may simply be shorter
// than the schedule).
func assembleSlots(slots []*bits.Buffer) *bits.Buffer {
	last := -1
	for r := len(slots) - 1; r >= 0; r-- {
		if slots[r] != nil {
			last = r
			break
		}
	}
	if last < 0 {
		return nil
	}
	cum := bits.New(0)
	for r := 0; r <= last; r++ {
		if slots[r] == nil {
			return nil
		}
		cum.Append(slots[r])
	}
	return cum
}
