package routing

import (
	"fmt"

	"repro/internal/bits"
	"repro/internal/core"
)

// loadWidth is the fixed wire width used for max-load aggregation values.
const loadWidth = 32

// RouteValiant delivers the demand with randomized 2-hop (Valiant) routing
// computed entirely inside the model: every message picks a uniformly
// random intermediate, and the number of forwarding sub-rounds for each
// phase is agreed in-band by aggregating the maximum per-link queue length
// through node 0 (two O(1)-round aggregations). For Lenzen-balanced demands
// the sub-round count is O(log n / log log n) with high probability, so the
// total round count is O(1) for bandwidth b = Ω(log n + payload).
//
// Unlike Route, no out-of-band schedule exists: every bit of coordination
// crosses the simulated network.
func (rt *Router) RouteValiant(p *core.Proc, out []Msg, maxPayloadBits int) ([]Msg, error) {
	if p.Model() != core.Unicast {
		return nil, ErrModel
	}
	n := p.N()
	w := bits.UintWidth(uint64(n - 1))
	chunk := core.ChunkRounds(w+maxPayloadBits, p.Bandwidth())

	var local []Msg
	queues := make([][]Msg, n) // queues[i] = messages to forward via intermediate i
	for _, m := range out {
		if m.Src != p.ID() {
			return nil, fmt.Errorf("%w: node %d submitted message from %d", ErrWrongSource, p.ID(), m.Src)
		}
		if m.Payload.Len() > maxPayloadBits {
			return nil, fmt.Errorf("%w: %d > %d bits", ErrPayloadTooLong, m.Payload.Len(), maxPayloadBits)
		}
		if m.Dst == p.ID() {
			local = append(local, m)
			continue
		}
		inter := p.Rand().Intn(n)
		queues[inter] = append(queues[inter], m)
	}

	maxQ := 0
	for i, q := range queues {
		if i != p.ID() && len(q) > maxQ {
			maxQ = len(q)
		}
	}
	sub1, err := agreeMax(p, maxQ)
	if err != nil {
		return nil, err
	}

	// Phase 1: source -> random intermediate.
	held := queues[p.ID()] // self-intermediated messages stay local
	queues[p.ID()] = nil
	for s := 0; s < sub1; s++ {
		perDst := make([]*bits.Buffer, n)
		for i, q := range queues {
			if s >= len(q) {
				continue
			}
			m := q[s]
			buf := bits.New(w + m.Payload.Len())
			buf.WriteUint(uint64(m.Dst), w)
			buf.Append(m.Payload)
			perDst[i] = buf
		}
		got, err := ExchangeUnicast(p, perDst, chunk)
		if err != nil {
			return nil, err
		}
		for src, buf := range got {
			if buf == nil {
				continue
			}
			m, err := decodeRouted(buf, w, src, -1)
			if err != nil {
				return nil, err
			}
			held = append(held, m)
		}
	}

	// Phase 2: intermediate -> destination.
	fwd := make([][]Msg, n)
	var recv []Msg
	for _, m := range held {
		if m.Dst == p.ID() {
			recv = append(recv, m)
			continue
		}
		fwd[m.Dst] = append(fwd[m.Dst], m)
	}
	maxQ = 0
	for _, q := range fwd {
		if len(q) > maxQ {
			maxQ = len(q)
		}
	}
	sub2, err := agreeMax(p, maxQ)
	if err != nil {
		return nil, err
	}
	for s := 0; s < sub2; s++ {
		perDst := make([]*bits.Buffer, n)
		for d, q := range fwd {
			if s >= len(q) {
				continue
			}
			m := q[s]
			buf := bits.New(w + m.Payload.Len())
			buf.WriteUint(uint64(m.Src), w)
			buf.Append(m.Payload)
			perDst[d] = buf
		}
		got, err := ExchangeUnicast(p, perDst, chunk)
		if err != nil {
			return nil, err
		}
		for _, buf := range got {
			if buf == nil {
				continue
			}
			m, err := decodeRouted(buf, w, -1, p.ID())
			if err != nil {
				return nil, err
			}
			recv = append(recv, m)
		}
	}
	recv = append(recv, local...)
	return recv, nil
}

// decodeRouted parses a routed wire message. Exactly one of src, dst is -1:
// the -1 field is read from the header, the other is known from context.
func decodeRouted(buf *bits.Buffer, w, src, dst int) (Msg, error) {
	r := bits.NewReader(buf)
	hdr, err := r.ReadUint(w)
	if err != nil {
		return Msg{}, fmt.Errorf("routing: bad header: %w", err)
	}
	payload, err := buf.Slice(w, buf.Len())
	if err != nil {
		return Msg{}, err
	}
	if src == -1 {
		src = int(hdr)
	} else {
		dst = int(hdr)
	}
	return Msg{Src: src, Dst: dst, Payload: payload}, nil
}

// agreeMax agrees on the maximum of each node's local value via node 0:
// everyone sends its value to node 0, node 0 broadcasts the maximum.
func agreeMax(p *core.Proc, local int) (int, error) {
	n := p.N()
	rounds := core.ChunkRounds(loadWidth, p.Bandwidth())
	// Step 1: all -> node 0.
	perDst := make([]*bits.Buffer, n)
	if p.ID() != 0 {
		buf := bits.New(loadWidth)
		buf.WriteUint(uint64(local), loadWidth)
		perDst[0] = buf
	}
	got, err := ExchangeUnicast(p, perDst, rounds)
	if err != nil {
		return 0, err
	}
	max := local
	if p.ID() == 0 {
		for _, buf := range got {
			if buf == nil {
				continue
			}
			v, err := bits.NewReader(buf).ReadUint(loadWidth)
			if err != nil {
				return 0, err
			}
			if int(v) > max {
				max = int(v)
			}
		}
	}
	// Step 2: node 0 -> all.
	perDst = make([]*bits.Buffer, n)
	if p.ID() == 0 {
		for d := 1; d < n; d++ {
			buf := bits.New(loadWidth)
			buf.WriteUint(uint64(max), loadWidth)
			perDst[d] = buf
		}
	}
	got, err = ExchangeUnicast(p, perDst, rounds)
	if err != nil {
		return 0, err
	}
	if p.ID() != 0 {
		if got[0] == nil {
			return 0, fmt.Errorf("routing: node %d missed max-load broadcast", p.ID())
		}
		v, err := bits.NewReader(got[0]).ReadUint(loadWidth)
		if err != nil {
			return 0, err
		}
		max = int(v)
	}
	return max, nil
}
