package routing

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/bits"
	"repro/internal/core"
	"repro/internal/fault"
)

func framePayload(t *testing.T, data []byte, n int) *bits.Buffer {
	t.Helper()
	b, err := bits.FromBits(data, n)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestFrameRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 37, 256, 1000} {
		data := make([]byte, (n+7)/8)
		rng := rand.New(rand.NewSource(int64(n)))
		for i := range data {
			data[i] = byte(rng.Intn(256))
		}
		if n%8 != 0 {
			data[len(data)-1] &= byte(1<<uint(n%8)) - 1
		}
		payload := framePayload(t, data, n)
		frame, err := EncodeFrame(payload)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if frame.Len() != FrameBits(n) {
			t.Fatalf("n=%d: frame is %d bits, want %d", n, frame.Len(), FrameBits(n))
		}
		got, err := DecodeFrame(frame)
		if err != nil {
			t.Fatalf("n=%d: decode: %v", n, err)
		}
		if !got.Equal(payload) {
			t.Fatalf("n=%d: payload mangled", n)
		}
	}
}

func TestFrameRejectsOversize(t *testing.T) {
	big := bits.New(MaxFramePayloadBits + 1)
	big.ZeroExtend(MaxFramePayloadBits + 1)
	if _, err := EncodeFrame(big); !errors.Is(err, ErrPayloadTooLong) {
		t.Fatalf("err = %v, want ErrPayloadTooLong", err)
	}
}

func TestFrameRejectsMutations(t *testing.T) {
	payload := framePayload(t, []byte{0xde, 0xad, 0xbe, 0xef}, 30)
	frame, err := EncodeFrame(payload)
	if err != nil {
		t.Fatal(err)
	}

	// Truncated below the header.
	stub, _ := frame.Slice(0, 20)
	if _, err := DecodeFrame(stub); !errors.Is(err, ErrCorruptFrame) {
		t.Errorf("header-short frame: err = %v", err)
	}
	// Truncated mid-payload.
	short, _ := frame.Slice(0, frame.Len()-5)
	if _, err := DecodeFrame(short); !errors.Is(err, ErrCorruptFrame) {
		t.Errorf("truncated frame: err = %v", err)
	}
	// Extended.
	long := frame.Clone()
	long.WriteUint(0, 5)
	if _, err := DecodeFrame(long); !errors.Is(err, ErrCorruptFrame) {
		t.Errorf("extended frame: err = %v", err)
	}
	// Every single-bit flip across the whole frame must be caught.
	for i := 0; i < frame.Len(); i++ {
		bad := frame.Clone()
		bad.FlipBit(i)
		if _, err := DecodeFrame(bad); !errors.Is(err, ErrCorruptFrame) {
			t.Fatalf("flip at bit %d accepted: err = %v", i, err)
		}
	}
}

// TestFrameHeavyCorruption hammers frames with many random flips: decode
// must detect (the overwhelmingly likely case for >3 flips) or — never —
// return a payload different from the original. With a fixed seed this
// is fully deterministic.
func TestFrameHeavyCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	payload := framePayload(t, []byte{1, 2, 3, 4, 5, 6, 7, 8}, 64)
	frame, err := EncodeFrame(payload)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 2000; trial++ {
		bad := frame.Clone()
		flips := 4 + rng.Intn(12)
		for f := 0; f < flips; f++ {
			bad.FlipBit(rng.Intn(bad.Len()))
		}
		got, err := DecodeFrame(bad)
		if err == nil && !got.Equal(payload) {
			t.Fatalf("trial %d: corrupted frame decoded to a DIFFERENT payload (silent corruption)", trial)
		}
	}
}

// reliablePair runs a 2-node reliable stream under the given fault spec
// and returns (sender error, receiver payload, receiver error).
func reliablePair(t *testing.T, payloadBits, bandwidth int, opt ReliableOpts, spec fault.Spec, seed int64) (error, *bits.Buffer, error) {
	t.Helper()
	payload := bits.New(payloadBits)
	for i := 0; i < payloadBits; i++ {
		payload.WriteBit(uint64((i * 7) & 1))
	}
	rounds := ReliableRounds(payloadBits, bandwidth)
	var sendErr, recvErr error
	var got *bits.Buffer
	var plan core.FaultInjector
	if spec.Active() {
		plan = fault.New(spec, seed)
	}
	_, err := core.RunProcsEach(core.Config{
		N: 2, Bandwidth: bandwidth, Model: core.Unicast, Seed: seed,
		FaultPlan: plan, QuiesceLimit: -1,
	}, []func(*core.Proc) error{
		func(p *core.Proc) error {
			sendErr = SendReliable(p, 1, payload, rounds, opt)
			return nil
		},
		func(p *core.Proc) error {
			got, recvErr = RecvReliable(p, 0, rounds, opt)
			return nil
		},
	})
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	if recvErr == nil && !got.Equal(payload) {
		t.Fatal("receiver accepted a payload that differs from the original (silent corruption)")
	}
	return sendErr, got, recvErr
}

func TestReliableCleanChannel(t *testing.T) {
	sendErr, got, recvErr := reliablePair(t, 200, 32, ReliableOpts{}, fault.Spec{}, 1)
	if sendErr != nil || recvErr != nil || got == nil {
		t.Fatalf("clean channel: sendErr=%v recvErr=%v", sendErr, recvErr)
	}
}

// TestReliableRecoversFromFaults: at moderate drop/corrupt rates the
// retransmit schedule delivers the exact payload. Seeds are fixed, so
// these are deterministic replays, not flaky probes.
func TestReliableRecoversFromFaults(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec fault.Spec
	}{
		{"drop", fault.Spec{Drop: 0.15}},
		{"corrupt", fault.Spec{Corrupt: 0.15}},
		{"delay", fault.Spec{Delay: 0.15}},
		{"dup", fault.Spec{Duplicate: 0.2}},
		{"mixed", fault.Spec{Drop: 0.08, Corrupt: 0.08, Delay: 0.08, Duplicate: 0.08}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sendErr, got, recvErr := reliablePair(t, 200, 32, ReliableOpts{}, tc.spec, 3)
			if recvErr != nil {
				t.Fatalf("receiver failed under %v: %v", tc.spec, recvErr)
			}
			if got == nil {
				t.Fatal("no payload")
			}
			if sendErr != nil {
				t.Fatalf("sender unacked under %v: %v", tc.spec, sendErr)
			}
		})
	}
}

// TestReliableDetectsTotalLoss: a fully lossy link yields explicit
// errors on both ends — never a hang (fixed schedule) and never a bogus
// payload.
func TestReliableDetectsTotalLoss(t *testing.T) {
	sendErr, got, recvErr := reliablePair(t, 200, 32, ReliableOpts{MaxAttempts: 3}, fault.Spec{Drop: 1}, 5)
	if !errors.Is(sendErr, ErrUnacked) {
		t.Errorf("sender err = %v, want ErrUnacked", sendErr)
	}
	if !errors.Is(recvErr, ErrCorruptFrame) {
		t.Errorf("receiver err = %v, want ErrCorruptFrame", recvErr)
	}
	if got != nil {
		t.Error("receiver produced a payload from a fully lossy link")
	}
}

// TestReliableDeterministicAcrossParallelism: the full exchange replays
// bit-for-bit under different engine worker counts.
func TestReliableDeterministicAcrossParallelism(t *testing.T) {
	run := func(par int) (*core.Result, error) {
		payload := bits.New(120)
		for i := 0; i < 120; i++ {
			payload.WriteBit(uint64(i & 1))
		}
		rounds := ReliableRounds(120, 16)
		return core.RunProcsEach(core.Config{
			N: 2, Bandwidth: 16, Model: core.Unicast, Seed: 9,
			Parallelism: par, QuiesceLimit: -1,
			FaultPlan: fault.New(fault.Spec{Drop: 0.1, Corrupt: 0.1}, 9),
		}, []func(*core.Proc) error{
			func(p *core.Proc) error { return SendReliable(p, 1, payload, rounds, ReliableOpts{}) },
			func(p *core.Proc) error {
				_, err := RecvReliable(p, 0, rounds, ReliableOpts{})
				return err
			},
		})
	}
	seq, err := run(1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := run(4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Stats, par.Stats) {
		t.Errorf("stats differ:\n seq %+v\n par %+v", seq.Stats, par.Stats)
	}
	if !reflect.DeepEqual(seq.Faults, par.Faults) {
		t.Errorf("fault stats differ:\n seq %+v\n par %+v", seq.Faults, par.Faults)
	}
}

// TestReliableBitsScaleWithFaultRate pins the recovery-overhead story:
// a faultier link costs more bits (retransmissions) while the round
// schedule stays fixed.
func TestReliableBitsScaleWithFaultRate(t *testing.T) {
	cost := func(spec fault.Spec) int64 {
		payload := bits.New(240)
		payload.ZeroExtend(240)
		rounds := ReliableRounds(240, 24)
		var plan core.FaultInjector
		if spec.Active() {
			plan = fault.New(spec, 13)
		}
		res, err := core.RunProcsEach(core.Config{
			N: 2, Bandwidth: 24, Model: core.Unicast, Seed: 13,
			FaultPlan: plan, QuiesceLimit: -1,
		}, []func(*core.Proc) error{
			func(p *core.Proc) error { SendReliable(p, 1, payload, rounds, ReliableOpts{}); return nil },
			func(p *core.Proc) error { RecvReliable(p, 0, rounds, ReliableOpts{}); return nil },
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.TotalBits
	}
	clean := cost(fault.Spec{})
	lossy := cost(fault.Spec{Drop: 0.3})
	if lossy <= clean {
		t.Errorf("TotalBits %d at drop=0.3 not above clean %d (no retransmissions?)", lossy, clean)
	}
}
