package routing

import (
	"testing"

	"repro/internal/bits"
	"repro/internal/core"
)

// routeChunkedOnce routes an all-to-all demand whose payloads span
// several bandwidth chunks, exercising ExchangeUnicast's chunk-stream
// sender. Returns via t.Fatal on any routing error.
func routeChunkedOnce(tb testing.TB, n, bandwidth, payloadBits int) {
	rt := NewRouter(n)
	cfg := core.Config{N: n, Bandwidth: bandwidth, Model: core.Unicast, Seed: 3, Parallelism: 1}
	if _, err := core.RunProcs(cfg, func(p *core.Proc) error {
		var out []Msg
		for j := 0; j < n; j++ {
			if j == p.ID() {
				continue
			}
			b := bits.New(payloadBits)
			for k := 0; k < payloadBits; k += 24 {
				w := payloadBits - k
				if w > 24 {
					w = 24
				}
				b.WriteUint(uint64(p.ID()*131+j*17+k)&0xFFFFFF, w)
			}
			out = append(out, Msg{Src: p.ID(), Dst: j, Payload: b})
		}
		got, err := rt.Route(p, out, payloadBits)
		if err != nil {
			return err
		}
		for _, m := range got {
			m.Payload.Release()
		}
		return nil
	}); err != nil {
		tb.Fatalf("route: %v", err)
	}
}

// TestAllocRegressionRouting pins ExchangeUnicast's arena migration:
// chunk buffers come from Ctx.Msg, so streaming more chunks per message
// must not add per-chunk allocations. Same two-scale shape as the
// engine's TestAllocRegressionEngine — the fixed epoch setup cancels in
// the delta, leaving the per-extra-chunk cost. Matches the CI
// alloc-regression pattern (-run AllocRegression).
func TestAllocRegressionRouting(t *testing.T) {
	const n, bw = 8, 16
	// 13 payload bits + 3 header bits = 1 chunk; 141 + 3 = 9 chunks.
	short := testing.AllocsPerRun(5, func() { routeChunkedOnce(t, n, bw, 13) })
	long := testing.AllocsPerRun(5, func() { routeChunkedOnce(t, n, bw, 141) })
	// ~112 relay sends per chunk round (2 hops x 56 messages) over 8
	// extra chunk rounds per phase.
	perChunkRound := (long - short) / 8
	t.Logf("allocs: 1-chunk %.0f, 9-chunk %.0f (%.1f/extra chunk round)", short, long, perChunkRound)
	// The pooled-buffer sender paid ~2 allocs per relay send (frozen
	// view + pool churn) — hundreds per extra chunk round on this shape.
	// The arena sender pays ~0; allow slack for buffer regrowth on the
	// receive side.
	if perChunkRound > 40 {
		t.Errorf("routing allocates %.1f per extra chunk round, want ~0 (arena regression)", perChunkRound)
	}
}

// BenchmarkRouteChunkStream is the routing throughput benchmark folded
// into BENCH (scripts/bench.sh): an all-to-all demand with 9-chunk
// payloads on an 8-clique, dominated by ExchangeUnicast's chunk loop.
func BenchmarkRouteChunkStream(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		routeChunkedOnce(b, 8, 16, 141)
	}
}
