package graph

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// Embedding is an injective map from pattern vertices to host vertices:
// Embedding[i] hosts pattern vertex i.
type Embedding []int

// ContainsSubgraph reports whether host contains a (not necessarily induced)
// subgraph isomorphic to pattern.
func ContainsSubgraph(host, pattern *Graph) bool {
	_, ok := FindSubgraphIso(host, pattern)
	return ok
}

// FindSubgraphIso returns one subgraph embedding of pattern into host, if
// any exists.
func FindSubgraphIso(host, pattern *Graph) (Embedding, bool) {
	var found Embedding
	ForEachEmbedding(host, pattern, func(emb Embedding) bool {
		found = append(Embedding(nil), emb...)
		return false // stop at first
	})
	return found, found != nil
}

// ForEachEmbedding enumerates all injective edge-preserving maps of pattern
// into host, invoking fn for each. If fn returns false the enumeration
// stops. The embedding slice passed to fn is reused between calls; copy it
// if it must be retained.
func ForEachEmbedding(host, pattern *Graph, fn func(Embedding) bool) {
	k := pattern.N()
	if k == 0 {
		fn(Embedding{})
		return
	}
	if k > host.N() {
		return
	}
	order := patternOrder(pattern)
	// prevNbrs[i] = neighbors of order[i] among order[0..i-1] (indices into order).
	pos := make([]int, k)
	for i, v := range order {
		pos[v] = i
	}
	prevNbrs := make([][]int, k)
	for i, v := range order {
		for _, w := range pattern.Neighbors(v) {
			if pos[w] < i {
				prevNbrs[i] = append(prevNbrs[i], pos[w])
			}
		}
	}

	used := make([]bool, host.N())
	assign := make([]int, k) // assign[i] = host vertex for order[i]
	emb := make(Embedding, k)

	words := (host.N() + 63) / 64
	cand := make([]uint64, words)

	var rec func(i int) bool
	rec = func(i int) bool {
		if i == k {
			for j, v := range order {
				emb[v] = assign[j]
			}
			return fn(emb)
		}
		pv := order[i]
		need := pattern.Degree(pv)
		if len(prevNbrs[i]) > 0 {
			// Candidates: intersection of host adjacency of mapped prior neighbors.
			first := host.AdjRow(assign[prevNbrs[i][0]])
			copy(cand, first)
			for _, pj := range prevNbrs[i][1:] {
				row := host.AdjRow(assign[pj])
				for w := range cand {
					cand[w] &= row[w]
				}
			}
			// Iterate set bits; cand is clobbered by deeper recursion, so
			// snapshot it.
			snap := append([]uint64(nil), cand...)
			for w, word := range snap {
				for word != 0 {
					u := w*64 + bits.TrailingZeros64(word)
					word &= word - 1
					if used[u] || host.Degree(u) < need {
						continue
					}
					used[u] = true
					assign[i] = u
					if !rec(i + 1) {
						used[u] = false
						return false
					}
					used[u] = false
				}
			}
			return true
		}
		// No constraint from prior vertices (first vertex of a component).
		for u := 0; u < host.N(); u++ {
			if used[u] || host.Degree(u) < need {
				continue
			}
			used[u] = true
			assign[i] = u
			if !rec(i + 1) {
				used[u] = false
				return false
			}
			used[u] = false
		}
		return true
	}
	rec(0)
}

// patternOrder orders pattern vertices so that each vertex (after the first
// of its component) is adjacent to an earlier one, maximizing early pruning.
func patternOrder(pattern *Graph) []int {
	k := pattern.N()
	order := make([]int, 0, k)
	inOrder := make([]bool, k)
	// connectivity[v] = number of ordered neighbors
	conn := make([]int, k)
	for len(order) < k {
		best := -1
		for v := 0; v < k; v++ {
			if inOrder[v] {
				continue
			}
			if best == -1 ||
				conn[v] > conn[best] ||
				(conn[v] == conn[best] && pattern.Degree(v) > pattern.Degree(best)) {
				best = v
			}
		}
		order = append(order, best)
		inOrder[best] = true
		for _, w := range pattern.Neighbors(best) {
			conn[w]++
		}
	}
	return order
}

// Copy is one subgraph of the host isomorphic to the pattern, identified by
// its vertex set and edge set (host labels).
type Copy struct {
	Verts []int
	Edges [][2]int
}

// key returns a canonical identifier for the copy (its sorted edge set).
func (c Copy) key() string {
	var sb strings.Builder
	for _, e := range c.Edges {
		fmt.Fprintf(&sb, "%d-%d;", e[0], e[1])
	}
	return sb.String()
}

// EnumerateCopies returns all distinct subgraphs of host isomorphic to
// pattern. Two embeddings that induce the same edge set (automorphic images)
// yield a single copy. Intended for the small host graphs used in the
// lower-bound constructions; cost grows with the number of embeddings.
func EnumerateCopies(host, pattern *Graph) []Copy {
	seen := make(map[string]struct{})
	var out []Copy
	ForEachEmbedding(host, pattern, func(emb Embedding) bool {
		edges := make([][2]int, 0, pattern.M())
		for _, e := range pattern.Edges() {
			a, b := emb[e[0]], emb[e[1]]
			if a > b {
				a, b = b, a
			}
			edges = append(edges, [2]int{a, b})
		}
		sort.Slice(edges, func(i, j int) bool {
			if edges[i][0] != edges[j][0] {
				return edges[i][0] < edges[j][0]
			}
			return edges[i][1] < edges[j][1]
		})
		verts := append([]int(nil), emb...)
		sort.Ints(verts)
		verts = dedupeInts(verts)
		c := Copy{Verts: verts, Edges: edges}
		k := c.key()
		if _, ok := seen[k]; !ok {
			seen[k] = struct{}{}
			out = append(out, c)
		}
		return true
	})
	return out
}

func dedupeInts(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}
