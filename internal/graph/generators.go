package graph

import (
	"fmt"
	"math/rand"
)

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddEdge(u, v)
		}
	}
	return g
}

// Cycle returns the cycle C_n (n >= 3).
func Cycle(n int) *Graph {
	if n < 3 {
		panic(fmt.Sprintf("graph: cycle needs >= 3 vertices, got %d", n))
	}
	g := New(n)
	for v := 0; v < n; v++ {
		g.AddEdge(v, (v+1)%n)
	}
	return g
}

// Path returns the path P_n on n vertices (n-1 edges).
func Path(n int) *Graph {
	g := New(n)
	for v := 0; v+1 < n; v++ {
		g.AddEdge(v, v+1)
	}
	return g
}

// Star returns the star K_{1,n-1} with center 0.
func Star(n int) *Graph {
	g := New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(0, v)
	}
	return g
}

// CompleteBipartite returns K_{a,b}: left part {0..a-1}, right {a..a+b-1}.
func CompleteBipartite(a, b int) *Graph {
	g := New(a + b)
	for u := 0; u < a; u++ {
		for v := a; v < a+b; v++ {
			g.AddEdge(u, v)
		}
	}
	return g
}

// Gnp returns an Erdős–Rényi random graph G(n,p).
func Gnp(n int, p float64, rng *rand.Rand) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// Gnm returns a uniformly random graph with n vertices and exactly m edges
// (m must not exceed n(n-1)/2).
func Gnm(n, m int, rng *rand.Rand) *Graph {
	max := n * (n - 1) / 2
	if m > max {
		panic(fmt.Sprintf("graph: Gnm(%d,%d) exceeds max %d edges", n, m, max))
	}
	g := New(n)
	for g.M() < m {
		u := rng.Intn(n)
		v := rng.Intn(n)
		g.AddEdge(u, v)
	}
	return g
}

// RandomTree returns a uniformly random labelled tree on n vertices via a
// random Prüfer-like attachment (each vertex v >= 1 attaches to a uniform
// earlier vertex), which suffices for test workloads.
func RandomTree(n int, rng *rand.Rand) *Graph {
	g := New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(v, rng.Intn(v))
	}
	return g
}

// RandomBipartite returns a random bipartite graph with parts of size a and
// b where each cross pair is an edge independently with probability p.
func RandomBipartite(a, b int, p float64, rng *rand.Rand) *Graph {
	g := New(a + b)
	for u := 0; u < a; u++ {
		for v := a; v < a+b; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// PowerLaw returns a preferential-attachment (Barabási–Albert style)
// graph: vertices arrive one at a time and each newcomer attaches to m
// distinct earlier vertices chosen with probability proportional to their
// current degree (endpoint sampling over the running edge list). The
// first min(m+1, n) vertices form a clique seed. Degree tails follow the
// usual power law, giving the scenario matrix its skewed-degree family.
func PowerLaw(n, m int, rng *rand.Rand) *Graph {
	if m < 1 {
		m = 1
	}
	g := New(n)
	seed := m + 1
	if seed > n {
		seed = n
	}
	for u := 0; u < seed; u++ {
		for v := u + 1; v < seed; v++ {
			g.AddEdge(u, v)
		}
	}
	// ends holds both endpoints of every edge so far; uniform sampling
	// from it is degree-proportional sampling of vertices.
	ends := make([]int, 0, 2*m*n)
	for _, e := range g.Edges() {
		ends = append(ends, e[0], e[1])
	}
	// The newcomer loop only runs when n > seed >= 2, so the clique seed
	// guarantees ends is non-empty and holds >= m+1 distinct vertices,
	// all < v: sampling always terminates.
	picked := make([]int, 0, m)
	for v := seed; v < n; v++ {
		picked = picked[:0]
		for len(picked) < m {
			t := ends[rng.Intn(len(ends))]
			dup := false
			for _, q := range picked {
				if q == t {
					dup = true
					break
				}
			}
			if !dup {
				picked = append(picked, t)
			}
		}
		for _, t := range picked {
			g.AddEdge(v, t)
			ends = append(ends, v, t)
		}
	}
	return g
}

// ComponentsGnp returns a graph with exactly k connected components:
// the vertices split into k near-equal contiguous blocks, each block is
// a random spanning tree plus G(block, p) extra edges, and no edge
// crosses blocks. The disconnected-components family of the sketch
// connectivity protocols (DESIGN.md §10); k is capped at n.
func ComponentsGnp(n, k int, p float64, rng *rand.Rand) *Graph {
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	g := New(n)
	for b := 0; b < k; b++ {
		lo, hi := b*n/k, (b+1)*n/k
		for v := lo + 1; v < hi; v++ {
			g.AddEdge(v, lo+rng.Intn(v-lo))
		}
		for u := lo; u < hi; u++ {
			for v := u + 1; v < hi; v++ {
				if rng.Float64() < p {
					g.AddEdge(u, v)
				}
			}
		}
	}
	return g
}

// PlantedGnp returns G(n, p) with `copies` random copies of the pattern h
// planted on top (the planted-H family of the scenario matrix), together
// with the vertex sets used for the plants.
func PlantedGnp(n int, p float64, h *Graph, copies int, rng *rand.Rand) (*Graph, [][]int) {
	g := Gnp(n, p, rng)
	plants := make([][]int, 0, copies)
	for i := 0; i < copies; i++ {
		plants = append(plants, PlantCopy(g, h, rng))
	}
	return g, plants
}

// WithIsolated returns a copy of g padded with isolated vertices up to n
// total (or g itself unchanged, as a clone, when it already has >= n).
// Scenario families built from rigid constructions (RS tripartite graphs,
// polarity graphs) use it to hit an exact player count.
func WithIsolated(g *Graph, n int) *Graph {
	if n < g.N() {
		n = g.N()
	}
	out := New(n)
	for _, e := range g.Edges() {
		out.AddEdge(e[0], e[1])
	}
	return out
}

// DisjointUnion returns the disjoint union of g and h; vertices of h are
// shifted up by g.N().
func DisjointUnion(g, h *Graph) *Graph {
	out := New(g.N() + h.N())
	for _, e := range g.Edges() {
		out.AddEdge(e[0], e[1])
	}
	for _, e := range h.Edges() {
		out.AddEdge(e[0]+g.N(), e[1]+g.N())
	}
	return out
}

// PlantCopy embeds pattern h into g on a random injective vertex set and
// returns the vertices used (position i hosts pattern vertex i). It panics
// if h has more vertices than g.
func PlantCopy(g, h *Graph, rng *rand.Rand) []int {
	if h.N() > g.N() {
		panic("graph: pattern larger than host")
	}
	perm := rng.Perm(g.N())[:h.N()]
	for _, e := range h.Edges() {
		g.AddEdge(perm[e[0]], perm[e[1]])
	}
	return perm
}

// PlantTriangles adds t vertex-random triangles to g and returns the actual
// triangle count of the resulting graph (planting may create extras).
func PlantTriangles(g *Graph, t int, rng *rand.Rand) int {
	tri := Complete(3)
	for i := 0; i < t; i++ {
		PlantCopy(g, tri, rng)
	}
	return g.CountTriangles()
}
