package graph

import (
	"math/rand"
	"testing"
)

func TestWeightedGnpDeterministic(t *testing.T) {
	a := WeightedGnp(60, 0.3, 100, 42)
	b := WeightedGnp(60, 0.3, 100, 42)
	if !a.Graph.Equal(b.Graph) {
		t.Fatal("WeightedGnp topology not deterministic for a fixed seed")
	}
	for _, e := range a.Edges() {
		if a.Weight(e[0], e[1]) != b.Weight(e[0], e[1]) {
			t.Fatalf("edge {%d,%d} weights differ: %d vs %d",
				e[0], e[1], a.Weight(e[0], e[1]), b.Weight(e[0], e[1]))
		}
	}
	c := WeightedGnp(60, 0.3, 100, 43)
	if a.Graph.Equal(c.Graph) {
		t.Fatal("WeightedGnp ignores the seed")
	}
}

func TestWeightedGnpRangeAndSymmetry(t *testing.T) {
	wg := WeightedGnp(50, 0.4, 7, 5)
	if wg.M() == 0 {
		t.Fatal("G(50, 0.4) came out edgeless")
	}
	seen := map[uint32]bool{}
	for _, e := range wg.Edges() {
		w := wg.Weight(e[0], e[1])
		if w < 1 || w > 7 {
			t.Fatalf("edge {%d,%d} weight %d outside [1,7]", e[0], e[1], w)
		}
		if wg.Weight(e[1], e[0]) != w {
			t.Fatalf("edge {%d,%d} weight asymmetric", e[0], e[1])
		}
		seen[w] = true
	}
	if len(seen) < 3 {
		t.Fatalf("only %d distinct weights over %d edges; derivation looks degenerate", len(seen), wg.M())
	}
	// Non-edges and the diagonal read as 0.
	for u := 0; u < wg.N(); u++ {
		if wg.Weight(u, u) != 0 {
			t.Fatalf("diagonal weight at %d is %d", u, wg.Weight(u, u))
		}
		for v := u + 1; v < wg.N(); v++ {
			if !wg.HasEdge(u, v) && wg.Weight(u, v) != 0 {
				t.Fatalf("non-edge {%d,%d} has weight %d", u, v, wg.Weight(u, v))
			}
		}
	}
}

func TestWeightedPowerLawShape(t *testing.T) {
	n, m := 120, 3
	wg := WeightedPowerLaw(n, m, 50, 11)
	wantM := m*(m+1)/2 + (n-m-1)*m
	if wg.N() != n || wg.M() != wantM {
		t.Fatalf("N=%d M=%d, want %d/%d", wg.N(), wg.M(), n, wantM)
	}
	if wg.MaxDegree() < 3*m {
		t.Fatalf("max degree %d too flat for preferential attachment", wg.MaxDegree())
	}
	for _, e := range wg.Edges() {
		if w := wg.Weight(e[0], e[1]); w < 1 || w > 50 {
			t.Fatalf("edge {%d,%d} weight %d outside [1,50]", e[0], e[1], w)
		}
	}
	again := WeightedPowerLaw(n, m, 50, 11)
	if !wg.Graph.Equal(again.Graph) {
		t.Fatal("WeightedPowerLaw not deterministic")
	}
	for _, e := range wg.Edges() {
		if wg.Weight(e[0], e[1]) != again.Weight(e[0], e[1]) {
			t.Fatal("WeightedPowerLaw weights not deterministic")
		}
	}
}

// TestWeightedFromSeedOrderInvariant pins the property the scenario
// matrix's differential legs rely on: weights depend only on (seed,
// endpoints), never on edge-insertion order.
func TestWeightedFromSeedOrderInvariant(t *testing.T) {
	a := New(10)
	b := New(10)
	edges := [][2]int{{0, 1}, {1, 2}, {2, 9}, {3, 7}, {0, 9}}
	for _, e := range edges {
		a.AddEdge(e[0], e[1])
	}
	for i := len(edges) - 1; i >= 0; i-- {
		b.AddEdge(edges[i][1], edges[i][0]) // reversed order and endpoints
	}
	wa := WeightedFromSeed(a, 99, 1000)
	wb := WeightedFromSeed(b, 99, 1000)
	for _, e := range edges {
		if wa.Weight(e[0], e[1]) != wb.Weight(e[0], e[1]) {
			t.Fatalf("edge {%d,%d}: weight depends on insertion order", e[0], e[1])
		}
	}
}

func TestSetWeightPanics(t *testing.T) {
	wg := NewWeighted(Cycle(4))
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("non-edge", func() { wg.SetWeight(0, 2, 5) })
	mustPanic("zero weight", func() { wg.SetWeight(0, 1, 0) })
}

func TestWeightedTinyN(t *testing.T) {
	for n := 1; n <= 4; n++ {
		wg := WeightedGnp(n, 0.5, 10, 3)
		if wg.N() != n {
			t.Fatalf("n=%d: got N=%d", n, wg.N())
		}
		pl := WeightedPowerLaw(n, 3, 10, rand.Int63())
		if pl.N() != n {
			t.Fatalf("powerlaw n=%d: got N=%d", n, pl.N())
		}
	}
}

func TestConnectedWeightedGnpConnectedAndDeterministic(t *testing.T) {
	for _, seed := range []int64{1, 7, 99} {
		a := ConnectedWeightedGnp(40, 0.05, 8, seed)
		// Connectivity regardless of the sparse p: walk from 0.
		seen := make([]bool, a.N())
		stack := []int{0}
		seen[0] = true
		count := 1
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, u := range a.Neighbors(v) {
				if !seen[u] {
					seen[u] = true
					count++
					stack = append(stack, u)
				}
			}
		}
		if count != a.N() {
			t.Fatalf("seed %d: reached %d of %d vertices", seed, count, a.N())
		}
		b := ConnectedWeightedGnp(40, 0.05, 8, seed)
		if !a.Graph.Equal(b.Graph) {
			t.Fatalf("seed %d: topology not deterministic", seed)
		}
		for _, e := range a.Edges() {
			if a.Weight(e[0], e[1]) != b.Weight(e[0], e[1]) {
				t.Fatalf("seed %d: weights not deterministic", seed)
			}
		}
	}
}

// TestConnectedWeightedGnpWeightsInsertionOrderInvariant pins the
// WeightedFromSeed property the scenario legs rely on: the weight of an
// edge depends only on (seed, endpoints), so a relabeled regeneration
// that happens to share an edge assigns it the same weight.
func TestConnectedWeightedGnpWeightsInsertionOrderInvariant(t *testing.T) {
	wg := ConnectedWeightedGnp(30, 0.2, 16, 13)
	direct := WeightedFromSeed(wg.Graph.Clone(), 13, 16)
	for _, e := range wg.Edges() {
		if wg.Weight(e[0], e[1]) != direct.Weight(e[0], e[1]) {
			t.Fatalf("edge {%d,%d}: generator weight %d != endpoint-derived weight %d",
				e[0], e[1], wg.Weight(e[0], e[1]), direct.Weight(e[0], e[1]))
		}
	}
}
