// Package graph provides the undirected-graph substrate for the congested
// clique reproduction: a bitset-backed graph type, generators, degeneracy
// computation, subgraph-isomorphism enumeration, and helpers for splitting a
// graph into the per-player inputs of the clique model (player i owns the
// edges adjacent to vertex i, as in the paper's subgraph-detection setup).
package graph

import (
	"fmt"
	"math/bits"
	"sort"
)

// Graph is a simple undirected graph on vertices 0..n-1 with bitset
// adjacency rows. The zero value is an empty graph on zero vertices; use New
// to create a graph with vertices.
type Graph struct {
	n     int
	words int
	adj   [][]uint64 // adj[v] is a bitset over vertices
	deg   []int
	m     int // number of edges
}

// New returns an edgeless graph on n vertices.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative vertex count %d", n))
	}
	words := (n + 63) / 64
	adj := make([][]uint64, n)
	rows := make([]uint64, n*words)
	for v := 0; v < n; v++ {
		adj[v] = rows[v*words : (v+1)*words : (v+1)*words]
	}
	return &Graph{n: n, words: words, adj: adj, deg: make([]int, n)}
}

// N reports the number of vertices.
func (g *Graph) N() int { return g.n }

// M reports the number of edges.
func (g *Graph) M() int { return g.m }

// AddEdge inserts the undirected edge {u,v}. Self-loops and duplicate edges
// are ignored.
func (g *Graph) AddEdge(u, v int) {
	if u == v {
		return
	}
	g.check(u)
	g.check(v)
	if g.HasEdge(u, v) {
		return
	}
	g.adj[u][v/64] |= 1 << uint(v%64)
	g.adj[v][u/64] |= 1 << uint(u%64)
	g.deg[u]++
	g.deg[v]++
	g.m++
}

// RemoveEdge deletes the undirected edge {u,v} if present.
func (g *Graph) RemoveEdge(u, v int) {
	if u == v || !g.HasEdge(u, v) {
		return
	}
	g.adj[u][v/64] &^= 1 << uint(v%64)
	g.adj[v][u/64] &^= 1 << uint(u%64)
	g.deg[u]--
	g.deg[v]--
	g.m--
}

// HasEdge reports whether {u,v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	if u == v {
		return false
	}
	return g.adj[u][v/64]&(1<<uint(v%64)) != 0
}

// Degree reports the degree of v.
func (g *Graph) Degree(v int) int {
	g.check(v)
	return g.deg[v]
}

// Neighbors returns the sorted neighbor list of v.
func (g *Graph) Neighbors(v int) []int {
	g.check(v)
	out := make([]int, 0, g.deg[v])
	for w, word := range g.adj[v] {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			out = append(out, w*64+b)
			word &= word - 1
		}
	}
	return out
}

// AdjRow returns the adjacency bitset of v. The caller must not modify it.
func (g *Graph) AdjRow(v int) []uint64 {
	g.check(v)
	return g.adj[v]
}

// Edges returns all edges {u,v} with u < v in lexicographic order.
func (g *Graph) Edges() [][2]int {
	out := make([][2]int, 0, g.m)
	for u := 0; u < g.n; u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				out = append(out, [2]int{u, v})
			}
		}
	}
	return out
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	out := New(g.n)
	for v := 0; v < g.n; v++ {
		copy(out.adj[v], g.adj[v])
	}
	copy(out.deg, g.deg)
	out.m = g.m
	return out
}

// Equal reports whether g and h have identical vertex counts and edge sets.
func (g *Graph) Equal(h *Graph) bool {
	if g.n != h.n || g.m != h.m {
		return false
	}
	for v := 0; v < g.n; v++ {
		for w := range g.adj[v] {
			if g.adj[v][w] != h.adj[v][w] {
				return false
			}
		}
	}
	return true
}

// InducedSubgraph returns the subgraph induced by keep (which need not be
// sorted) along with the mapping from new vertex index to original vertex.
func (g *Graph) InducedSubgraph(keep []int) (*Graph, []int) {
	vs := append([]int(nil), keep...)
	sort.Ints(vs)
	idx := make(map[int]int, len(vs))
	for i, v := range vs {
		idx[v] = i
	}
	out := New(len(vs))
	for i, v := range vs {
		for _, w := range g.Neighbors(v) {
			if j, ok := idx[w]; ok && i < j {
				out.AddEdge(i, j)
			}
		}
	}
	return out, vs
}

// CommonNeighborCount reports |N(u) ∩ N(v)| using word-parallel AND.
func (g *Graph) CommonNeighborCount(u, v int) int {
	g.check(u)
	g.check(v)
	total := 0
	for w := range g.adj[u] {
		total += bits.OnesCount64(g.adj[u][w] & g.adj[v][w])
	}
	return total
}

// CountTriangles returns the number of triangles in g, computed with
// word-parallel neighborhood intersections.
func (g *Graph) CountTriangles() int {
	total := 0
	for u := 0; u < g.n; u++ {
		for _, v := range g.Neighbors(u) {
			if v <= u {
				continue
			}
			// Count common neighbors w > v to count each triangle once.
			for w, word := range g.adj[u] {
				x := word & g.adj[v][w]
				for x != 0 {
					t := w*64 + bits.TrailingZeros64(x)
					if t > v {
						total++
					}
					x &= x - 1
				}
			}
		}
	}
	return total
}

// HasTriangle reports whether g contains any triangle.
func (g *Graph) HasTriangle() bool {
	for u := 0; u < g.n; u++ {
		for _, v := range g.Neighbors(u) {
			if v <= u {
				continue
			}
			for w := range g.adj[u] {
				if g.adj[u][w]&g.adj[v][w] != 0 {
					return true
				}
			}
		}
	}
	return false
}

// CutSize reports the number of edges with exactly one endpoint in side
// (given as a membership slice of length n).
func (g *Graph) CutSize(side []bool) int {
	if len(side) != g.n {
		panic("graph: side length mismatch")
	}
	cut := 0
	for _, e := range g.Edges() {
		if side[e[0]] != side[e[1]] {
			cut++
		}
	}
	return cut
}

// MaxDegree returns the maximum vertex degree (0 for an edgeless graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for _, d := range g.deg {
		if d > max {
			max = d
		}
	}
	return max
}

// String renders a short description of the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("graph(n=%d, m=%d)", g.n, g.m)
}

func (g *Graph) check(v int) {
	if v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", v, g.n))
	}
}
