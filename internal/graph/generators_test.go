package graph

import (
	"math/rand"
	"testing"
)

func TestPowerLawShape(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n, m := 200, 3
	g := PowerLaw(n, m, rng)
	if g.N() != n {
		t.Fatalf("N = %d, want %d", g.N(), n)
	}
	wantM := m*(m+1)/2 + (n-m-1)*m
	if g.M() != wantM {
		t.Fatalf("M = %d, want %d (clique seed + m per newcomer)", g.M(), wantM)
	}
	for v := 0; v < n; v++ {
		if g.Degree(v) < 1 {
			t.Fatalf("vertex %d isolated", v)
		}
	}
	// Preferential attachment must produce a hub far above the median
	// degree; a G(n,p) with the same edge count would not.
	if g.MaxDegree() < 3*m {
		t.Fatalf("max degree %d too flat for preferential attachment", g.MaxDegree())
	}
}

func TestPowerLawDeterministic(t *testing.T) {
	a := PowerLaw(100, 2, rand.New(rand.NewSource(42)))
	b := PowerLaw(100, 2, rand.New(rand.NewSource(42)))
	if !a.Equal(b) {
		t.Fatal("PowerLaw not deterministic for a fixed seed")
	}
}

func TestPowerLawTinyN(t *testing.T) {
	for n := 1; n <= 4; n++ {
		g := PowerLaw(n, 3, rand.New(rand.NewSource(1)))
		if g.N() != n {
			t.Fatalf("n=%d: got N=%d", n, g.N())
		}
		want := n * (n - 1) / 2 // all-clique when n <= m+1
		if g.M() != want {
			t.Fatalf("n=%d: M=%d, want clique %d", n, g.M(), want)
		}
	}
}

func TestPlantedGnp(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	h := Complete(4)
	g, plants := PlantedGnp(40, 0.02, h, 3, rng)
	if len(plants) != 3 {
		t.Fatalf("got %d plants, want 3", len(plants))
	}
	for i, pl := range plants {
		if len(pl) != 4 {
			t.Fatalf("plant %d uses %d vertices, want 4", i, len(pl))
		}
		for a := 0; a < 4; a++ {
			for b := a + 1; b < 4; b++ {
				if !g.HasEdge(pl[a], pl[b]) {
					t.Fatalf("plant %d missing edge %d-%d", i, pl[a], pl[b])
				}
			}
		}
	}
	if !ContainsSubgraph(g, h) {
		t.Fatal("planted K4 not found")
	}
}

func TestWithIsolated(t *testing.T) {
	g := Cycle(5)
	p := WithIsolated(g, 9)
	if p.N() != 9 || p.M() != 5 {
		t.Fatalf("padded to N=%d M=%d, want 9/5", p.N(), p.M())
	}
	for v := 5; v < 9; v++ {
		if p.Degree(v) != 0 {
			t.Fatalf("pad vertex %d has degree %d", v, p.Degree(v))
		}
	}
	// Shrinking is a clone, never a truncation.
	q := WithIsolated(g, 3)
	if q.N() != 5 || !q.Equal(g) {
		t.Fatalf("WithIsolated below N changed the graph")
	}
	q.AddEdge(0, 2)
	if g.HasEdge(0, 2) {
		t.Fatal("WithIsolated aliases the input graph")
	}
}

func TestComponentsGnpShape(t *testing.T) {
	countComponents := func(g *Graph) int {
		seen := make([]bool, g.N())
		comps := 0
		for s := 0; s < g.N(); s++ {
			if seen[s] {
				continue
			}
			comps++
			stack := []int{s}
			seen[s] = true
			for len(stack) > 0 {
				v := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, u := range g.Neighbors(v) {
					if !seen[u] {
						seen[u] = true
						stack = append(stack, u)
					}
				}
			}
		}
		return comps
	}
	for _, tc := range []struct{ n, k int }{{12, 1}, {21, 3}, {24, 4}, {10, 10}, {7, 20}} {
		rng := rand.New(rand.NewSource(int64(tc.n*100 + tc.k)))
		g := ComponentsGnp(tc.n, tc.k, 0.3, rng)
		wantK := tc.k
		if wantK > tc.n {
			wantK = tc.n
		}
		if got := countComponents(g); got != wantK {
			t.Fatalf("ComponentsGnp(%d,%d): %d components, want %d", tc.n, tc.k, got, wantK)
		}
		// No cross-block edges: blocks are the ranges b*n/k..(b+1)*n/k.
		for _, e := range g.Edges() {
			same := false
			for b := 0; b < wantK; b++ {
				lo, hi := b*tc.n/wantK, (b+1)*tc.n/wantK
				if e[0] >= lo && e[0] < hi && e[1] >= lo && e[1] < hi {
					same = true
					break
				}
			}
			if !same {
				t.Fatalf("ComponentsGnp(%d,%d): edge {%d,%d} crosses blocks", tc.n, tc.k, e[0], e[1])
			}
		}
	}
}

func TestComponentsGnpDeterministic(t *testing.T) {
	a := ComponentsGnp(30, 3, 0.25, rand.New(rand.NewSource(9)))
	b := ComponentsGnp(30, 3, 0.25, rand.New(rand.NewSource(9)))
	if !a.Equal(b) {
		t.Fatal("ComponentsGnp not deterministic for a fixed seed")
	}
	c := ComponentsGnp(30, 3, 0.25, rand.New(rand.NewSource(10)))
	if a.Equal(c) {
		t.Fatal("ComponentsGnp ignores the seed")
	}
}
