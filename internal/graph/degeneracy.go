package graph

// Degeneracy returns the degeneracy of g: the smallest k such that every
// subgraph of g has a vertex of degree at most k. It runs the standard
// linear-time bucket peeling (Matula–Beck).
func (g *Graph) Degeneracy() int {
	k, _ := g.DegeneracyOrder()
	return k
}

// DegeneracyOrder returns the degeneracy k and an elimination order
// v_1..v_n such that for every r, the degree of v_r within the subgraph
// induced by {v_r, ..., v_n} is at most k. This is exactly the ordering used
// in the proof of Lemma 8 in the paper.
func (g *Graph) DegeneracyOrder() (int, []int) {
	n := g.n
	deg := make([]int, n)
	copy(deg, g.deg)

	maxDeg := 0
	for _, d := range deg {
		if d > maxDeg {
			maxDeg = d
		}
	}
	// Bucket queue keyed by current degree.
	buckets := make([][]int, maxDeg+1)
	for v := 0; v < n; v++ {
		buckets[deg[v]] = append(buckets[deg[v]], v)
	}
	removed := make([]bool, n)
	order := make([]int, 0, n)
	k := 0
	cur := 0
	for len(order) < n {
		if cur > maxDeg {
			break // unreachable; defensive
		}
		if len(buckets[cur]) == 0 {
			cur++
			continue
		}
		v := buckets[cur][len(buckets[cur])-1]
		buckets[cur] = buckets[cur][:len(buckets[cur])-1]
		if removed[v] || deg[v] != cur {
			continue // stale bucket entry
		}
		removed[v] = true
		order = append(order, v)
		if cur > k {
			k = cur
		}
		for _, w := range g.Neighbors(v) {
			if !removed[w] {
				deg[w]--
				buckets[deg[w]] = append(buckets[deg[w]], w)
				if deg[w] < cur {
					cur = deg[w]
				}
			}
		}
	}
	return k, order
}
