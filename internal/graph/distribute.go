package graph

import "math/bits"

// LocalView is the input of one player in the subgraph-detection problems:
// player v knows exactly the edges adjacent to vertex v of the input graph
// (the paper's input partition). Protocol code receives a LocalView rather
// than the whole graph so that locality is enforced by construction.
type LocalView struct {
	n   int
	me  int
	row []uint64
}

// Distribute splits g into n local views, one per player.
func Distribute(g *Graph) []*LocalView {
	views := make([]*LocalView, g.N())
	for v := 0; v < g.N(); v++ {
		row := make([]uint64, len(g.AdjRow(v)))
		copy(row, g.AdjRow(v))
		views[v] = &LocalView{n: g.N(), me: v, row: row}
	}
	return views
}

// N reports the number of vertices in the underlying graph.
func (lv *LocalView) N() int { return lv.n }

// Me reports which vertex this view belongs to.
func (lv *LocalView) Me() int { return lv.me }

// HasEdge reports whether {Me, other} is an edge.
func (lv *LocalView) HasEdge(other int) bool {
	if other < 0 || other >= lv.n || other == lv.me {
		return false
	}
	return lv.row[other/64]&(1<<uint(other%64)) != 0
}

// Degree reports the degree of Me.
func (lv *LocalView) Degree() int {
	d := 0
	for _, w := range lv.row {
		d += bits.OnesCount64(w)
	}
	return d
}

// Neighbors returns the sorted neighbor list of Me.
func (lv *LocalView) Neighbors() []int {
	out := make([]int, 0, lv.Degree())
	for w, word := range lv.row {
		for word != 0 {
			out = append(out, w*64+bits.TrailingZeros64(word))
			word &= word - 1
		}
	}
	return out
}

// Row returns the adjacency bitset. The caller must not modify it.
func (lv *LocalView) Row() []uint64 { return lv.row }

// Collect reassembles a graph from local views, verifying symmetry. It is
// the inverse of Distribute and is used by tests.
func Collect(views []*LocalView) *Graph {
	g := New(len(views))
	for _, lv := range views {
		for _, u := range lv.Neighbors() {
			g.AddEdge(lv.Me(), u)
		}
	}
	return g
}
