package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// relabel returns g with vertices renamed by the permutation.
func relabel(g *Graph, perm []int) *Graph {
	out := New(g.N())
	for _, e := range g.Edges() {
		out.AddEdge(perm[e[0]], perm[e[1]])
	}
	return out
}

func TestContainsSubgraphPermutationInvariant(t *testing.T) {
	patterns := []*Graph{Complete(3), Cycle(4), Cycle(5), Path(4), CompleteBipartite(2, 2)}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := Gnp(14, rng.Float64()*0.5, rng)
		perm := rng.Perm(g.N())
		h := patterns[int(uint64(seed)%uint64(len(patterns)))]
		return ContainsSubgraph(g, h) == ContainsSubgraph(relabel(g, perm), h)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDegeneracyPermutationInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := Gnp(20, rng.Float64()*0.6, rng)
		perm := rng.Perm(g.N())
		return g.Degeneracy() == relabel(g, perm).Degeneracy()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTriangleCountPermutationInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := Gnp(18, 0.3, rng)
		perm := rng.Perm(g.N())
		return g.CountTriangles() == relabel(g, perm).CountTriangles()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCopyCountMatchesEmbeddingsOverAutomorphisms(t *testing.T) {
	// #embeddings = #copies × |Aut(H)| for vertex-transitive-ish checks:
	// triangles have |Aut| = 6, C4 has 8, P3 has 2.
	cases := []struct {
		h   *Graph
		aut int
	}{
		{Complete(3), 6},
		{Cycle(4), 8},
		{Path(3), 2},
	}
	rng := rand.New(rand.NewSource(5))
	for _, c := range cases {
		g := Gnp(12, 0.4, rng)
		emb := 0
		ForEachEmbedding(g, c.h, func(Embedding) bool {
			emb++
			return true
		})
		copies := len(EnumerateCopies(g, c.h))
		if emb != copies*c.aut {
			t.Errorf("pattern %v: %d embeddings vs %d copies × %d automorphisms",
				c.h, emb, copies, c.aut)
		}
	}
}
