package graph

import (
	"fmt"
	"math/rand"
)

// Weighted couples a Graph with positive uint32 edge weights. Weights are
// stored symmetrically (Weight(u,v) == Weight(v,u)); non-edges and the
// diagonal carry weight 0, which the semiring layer maps to +inf / the
// additive identity when it builds distance matrices.
type Weighted struct {
	*Graph
	w []uint32 // n*n row-major, symmetric
}

// NewWeighted wraps g with an all-zero weight table; callers assign edge
// weights with SetWeight (or use WeightedFromSeed for deterministic ones).
func NewWeighted(g *Graph) *Weighted {
	return &Weighted{Graph: g, w: make([]uint32, g.N()*g.N())}
}

// Weight returns the weight of edge {u,v}, or 0 if {u,v} is not an edge.
func (wg *Weighted) Weight(u, v int) uint32 {
	wg.check(u)
	wg.check(v)
	return wg.w[u*wg.N()+v]
}

// SetWeight assigns weight x to the existing edge {u,v}. Weights must be
// positive (0 is reserved for non-edges) and the edge must exist.
func (wg *Weighted) SetWeight(u, v int, x uint32) {
	if !wg.HasEdge(u, v) {
		panic(fmt.Sprintf("graph: SetWeight on non-edge {%d,%d}", u, v))
	}
	if x == 0 {
		panic(fmt.Sprintf("graph: zero weight on edge {%d,%d}", u, v))
	}
	n := wg.N()
	wg.w[u*n+v] = x
	wg.w[v*n+u] = x
}

// edgeWeight derives the deterministic weight of edge {u,v} from seed: a
// splitmix64 of (seed, min, max) reduced to [1, maxW]. It depends only on
// the unordered pair, never on edge-insertion order, so two independently
// generated copies of the same graph get identical weights — the property
// the scenario matrix's differential legs rely on.
func edgeWeight(seed int64, u, v int, maxW uint32) uint32 {
	if u > v {
		u, v = v, u
	}
	z := uint64(seed) ^ 0x9e3779b97f4a7c15*uint64(u+1) ^ 0x517cc1b727220a95*uint64(v+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return 1 + uint32(z%uint64(maxW))
}

// WeightedFromSeed assigns every edge of g a deterministic weight in
// [1, maxW] derived from (seed, endpoints). maxW must be positive.
func WeightedFromSeed(g *Graph, seed int64, maxW uint32) *Weighted {
	if maxW == 0 {
		panic("graph: WeightedFromSeed needs maxW >= 1")
	}
	wg := NewWeighted(g)
	for _, e := range g.Edges() {
		wg.SetWeight(e[0], e[1], edgeWeight(seed, e[0], e[1], maxW))
	}
	return wg
}

// WeightedGnp returns G(n,p) with deterministic uint32 edge weights in
// [1, maxW]: both the topology (via a seeded rng) and the weights (via
// WeightedFromSeed) are functions of seed alone.
func WeightedGnp(n int, p float64, maxW uint32, seed int64) *Weighted {
	g := Gnp(n, p, rand.New(rand.NewSource(seed)))
	return WeightedFromSeed(g, seed, maxW)
}

// ConnectedWeightedGnp returns a connected weighted graph: G(n,p)
// overlaid with a random spanning tree (so every instance is connected
// regardless of p), with deterministic uint32 edge weights in [1, maxW].
// Topology and weights are functions of seed alone; weights depend only
// on (seed, endpoints), never on edge-insertion order — the same
// invariance WeightedFromSeed guarantees.
func ConnectedWeightedGnp(n int, p float64, maxW uint32, seed int64) *Weighted {
	rng := rand.New(rand.NewSource(seed))
	g := Gnp(n, p, rng)
	for v := 1; v < n; v++ {
		g.AddEdge(v, rng.Intn(v))
	}
	return WeightedFromSeed(g, seed, maxW)
}

// WeightedPowerLaw returns a preferential-attachment graph (PowerLaw with
// attachment degree m) with deterministic uint32 edge weights in [1, maxW],
// a function of seed alone.
func WeightedPowerLaw(n, m int, maxW uint32, seed int64) *Weighted {
	g := PowerLaw(n, m, rand.New(rand.NewSource(seed)))
	return WeightedFromSeed(g, seed, maxW)
}
