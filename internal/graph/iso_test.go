package graph

import (
	"math/rand"
	"testing"
)

func TestContainsSubgraphBasics(t *testing.T) {
	cases := []struct {
		name    string
		host    *Graph
		pattern *Graph
		want    bool
	}{
		{"K4 in K5", Complete(5), Complete(4), true},
		{"K5 in K4", Complete(4), Complete(5), false},
		{"C4 in K4", Complete(4), Cycle(4), true},
		{"C5 in C5", Cycle(5), Cycle(5), true},
		{"C4 in C5", Cycle(5), Cycle(4), false},
		{"C3 in bipartite", CompleteBipartite(4, 4), Complete(3), false},
		{"C4 in K23", CompleteBipartite(2, 3), Cycle(4), true},
		{"P3 in star", Star(4), Path(3), true},
		{"P4 in star", Star(5), Path(4), false},
		{"K22 in C4", Cycle(4), CompleteBipartite(2, 2), true},
	}
	for _, c := range cases {
		if got := ContainsSubgraph(c.host, c.pattern); got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
}

func TestFindSubgraphIsoIsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	patterns := []*Graph{Complete(3), Cycle(4), Cycle(5), CompleteBipartite(2, 2), Path(4)}
	for trial := 0; trial < 30; trial++ {
		host := Gnp(25, 0.25, rng)
		p := patterns[trial%len(patterns)]
		emb, ok := FindSubgraphIso(host, p)
		if !ok {
			continue
		}
		seen := make(map[int]bool)
		for _, v := range emb {
			if seen[v] {
				t.Fatalf("embedding not injective: %v", emb)
			}
			seen[v] = true
		}
		for _, e := range p.Edges() {
			if !host.HasEdge(emb[e[0]], emb[e[1]]) {
				t.Fatalf("embedding %v does not preserve edge %v", emb, e)
			}
		}
	}
}

func TestFindPlantedPattern(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		host := Gnp(30, 0.05, rng)
		p := Cycle(6)
		PlantCopy(host, p, rng)
		if !ContainsSubgraph(host, p) {
			t.Fatal("planted C6 not found")
		}
	}
}

func TestEnumerateCopiesCounts(t *testing.T) {
	cases := []struct {
		name    string
		host    *Graph
		pattern *Graph
		want    int
	}{
		{"triangles in K4", Complete(4), Complete(3), 4},
		{"triangles in K5", Complete(5), Complete(3), 10},
		{"K4s in K5", Complete(5), Complete(4), 5},
		{"C4 in K4", Complete(4), Cycle(4), 3},
		{"edges in K4", Complete(4), Path(2), 6},
		{"C4 in K23", CompleteBipartite(2, 3), Cycle(4), 3},
		{"C5 in C5", Cycle(5), Cycle(5), 1},
		{"none", Cycle(8), Complete(3), 0},
	}
	for _, c := range cases {
		got := EnumerateCopies(c.host, c.pattern)
		if len(got) != c.want {
			t.Errorf("%s: %d copies, want %d", c.name, len(got), c.want)
		}
	}
}

func TestEnumerateCopiesMatchesTriangleCount(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		g := Gnp(20, 0.3, rng)
		copies := EnumerateCopies(g, Complete(3))
		if len(copies) != g.CountTriangles() {
			t.Fatalf("EnumerateCopies found %d triangles, CountTriangles says %d",
				len(copies), g.CountTriangles())
		}
	}
}

func TestEmptyPattern(t *testing.T) {
	calls := 0
	ForEachEmbedding(Complete(3), New(0), func(e Embedding) bool {
		calls++
		return true
	})
	if calls != 1 {
		t.Errorf("empty pattern embeddings = %d, want 1", calls)
	}
}

func TestDisconnectedPattern(t *testing.T) {
	// Two disjoint edges inside C5: choose 2 disjoint edges of the cycle.
	host := Cycle(5)
	pattern := DisjointUnion(Path(2), Path(2))
	copies := EnumerateCopies(host, pattern)
	if len(copies) != 5 { // C5 has 5 ways to pick two non-adjacent edges
		t.Errorf("disjoint-edge copies = %d, want 5", len(copies))
	}
}
