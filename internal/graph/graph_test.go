package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddRemoveHasEdge(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 3)
	g.AddEdge(3, 0) // duplicate
	g.AddEdge(2, 2) // self-loop ignored
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1", g.M())
	}
	if !g.HasEdge(0, 3) || !g.HasEdge(3, 0) {
		t.Error("edge {0,3} missing or asymmetric")
	}
	if g.HasEdge(2, 2) {
		t.Error("self-loop present")
	}
	g.RemoveEdge(0, 3)
	if g.M() != 0 || g.HasEdge(0, 3) {
		t.Error("RemoveEdge did not remove")
	}
	g.RemoveEdge(0, 3) // idempotent
	if g.M() != 0 {
		t.Error("double remove changed edge count")
	}
}

func TestDegreesAndNeighbors(t *testing.T) {
	g := Star(6)
	if g.Degree(0) != 5 {
		t.Errorf("center degree = %d, want 5", g.Degree(0))
	}
	for v := 1; v < 6; v++ {
		if g.Degree(v) != 1 {
			t.Errorf("leaf %d degree = %d, want 1", v, g.Degree(v))
		}
	}
	nb := g.Neighbors(0)
	if len(nb) != 5 {
		t.Fatalf("neighbors = %v", nb)
	}
	for i, v := range nb {
		if v != i+1 {
			t.Errorf("neighbors not sorted: %v", nb)
		}
	}
}

func TestEdgesComplete(t *testing.T) {
	g := Complete(7)
	if g.M() != 21 {
		t.Fatalf("K7 edges = %d, want 21", g.M())
	}
	if len(g.Edges()) != 21 {
		t.Fatalf("Edges() length mismatch")
	}
	if g.MaxDegree() != 6 {
		t.Errorf("max degree = %d, want 6", g.MaxDegree())
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := Cycle(6)
	sub, vs := g.InducedSubgraph([]int{0, 1, 2, 4})
	if sub.N() != 4 {
		t.Fatalf("induced N = %d", sub.N())
	}
	// Edges among {0,1,2,4} in C6: {0,1},{1,2}.
	if sub.M() != 2 {
		t.Errorf("induced M = %d, want 2", sub.M())
	}
	if vs[0] != 0 || vs[3] != 4 {
		t.Errorf("vertex map = %v", vs)
	}
}

func TestCountTriangles(t *testing.T) {
	cases := []struct {
		g    *Graph
		want int
	}{
		{Complete(3), 1},
		{Complete(4), 4},
		{Complete(5), 10},
		{Cycle(5), 0},
		{CompleteBipartite(3, 4), 0},
		{Star(9), 0},
	}
	for _, c := range cases {
		if got := c.g.CountTriangles(); got != c.want {
			t.Errorf("%v triangles = %d, want %d", c.g, got, c.want)
		}
		if c.g.HasTriangle() != (c.want > 0) {
			t.Errorf("%v HasTriangle inconsistent", c.g)
		}
	}
}

func TestCommonNeighborCount(t *testing.T) {
	g := CompleteBipartite(2, 3)
	if got := g.CommonNeighborCount(0, 1); got != 3 {
		t.Errorf("common neighbors of two left vertices = %d, want 3", got)
	}
	if got := g.CommonNeighborCount(2, 3); got != 2 {
		t.Errorf("common neighbors of two right vertices = %d, want 2", got)
	}
}

func TestCutSize(t *testing.T) {
	g := CompleteBipartite(3, 3)
	side := []bool{true, true, true, false, false, false}
	if got := g.CutSize(side); got != 9 {
		t.Errorf("cut = %d, want 9", got)
	}
}

func TestCloneEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := Gnp(40, 0.3, rng)
	h := g.Clone()
	if !g.Equal(h) {
		t.Fatal("clone not equal")
	}
	h.AddEdge(0, 1)
	h.RemoveEdge(0, 1)
	// After add+remove h may differ from g only if {0,1} was originally present.
	if g.HasEdge(0, 1) != h.HasEdge(0, 1) && g.Equal(h) {
		t.Fatal("Equal missed a difference")
	}
}

func TestDegeneracyKnownGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want int
	}{
		{"K5", Complete(5), 4},
		{"C7", Cycle(7), 2},
		{"tree", Path(9), 1},
		{"star", Star(10), 1},
		{"K33", CompleteBipartite(3, 3), 3},
		{"empty", New(4), 0},
	}
	for _, c := range cases {
		if got := c.g.Degeneracy(); got != c.want {
			t.Errorf("%s degeneracy = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestDegeneracyOrderProperty(t *testing.T) {
	// The defining property: v_r has degree <= k in G[{v_r..v_n}].
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		g := Gnp(30, rng.Float64()*0.5, rng)
		k, order := g.DegeneracyOrder()
		if len(order) != g.N() {
			t.Fatalf("order length %d != %d", len(order), g.N())
		}
		pos := make([]int, g.N())
		for i, v := range order {
			pos[v] = i
		}
		for i, v := range order {
			d := 0
			for _, w := range g.Neighbors(v) {
				if pos[w] > i {
					d++
				}
			}
			if d > k {
				t.Fatalf("vertex %d has %d later neighbors > degeneracy %d", v, d, k)
			}
		}
	}
}

func TestDegeneracyMatchesBruteForce(t *testing.T) {
	// Degeneracy = max over the peeling of min degree; cross-check with a
	// naive recomputation on small random graphs.
	rng := rand.New(rand.NewSource(3))
	naive := func(g *Graph) int {
		alive := make([]bool, g.N())
		for i := range alive {
			alive[i] = true
		}
		deg := make([]int, g.N())
		copy(deg, g.deg)
		k := 0
		for remaining := g.N(); remaining > 0; remaining-- {
			best, bd := -1, 1<<30
			for v := 0; v < g.N(); v++ {
				if alive[v] && deg[v] < bd {
					best, bd = v, deg[v]
				}
			}
			if bd > k {
				k = bd
			}
			alive[best] = false
			for _, w := range g.Neighbors(best) {
				if alive[w] {
					deg[w]--
				}
			}
		}
		return k
	}
	for trial := 0; trial < 25; trial++ {
		g := Gnp(18, rng.Float64(), rng)
		if got, want := g.Degeneracy(), naive(g); got != want {
			t.Fatalf("degeneracy = %d, naive = %d for %v", got, want, g)
		}
	}
}

func TestGnmEdgeCount(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := Gnm(20, 57, rng)
	if g.M() != 57 {
		t.Errorf("Gnm edges = %d, want 57", g.M())
	}
}

func TestRandomTreeIsTree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := RandomTree(25, rng)
	if g.M() != 24 {
		t.Fatalf("tree edges = %d, want 24", g.M())
	}
	if g.Degeneracy() != 1 {
		t.Errorf("tree degeneracy = %d, want 1", g.Degeneracy())
	}
}

func TestDisjointUnion(t *testing.T) {
	g := DisjointUnion(Complete(3), Cycle(4))
	if g.N() != 7 || g.M() != 7 {
		t.Fatalf("union n=%d m=%d, want 7,7", g.N(), g.M())
	}
	if g.HasEdge(2, 3) {
		t.Error("union created cross edge")
	}
}

func TestPlantCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		g := New(20)
		h := Cycle(5)
		verts := PlantCopy(g, h, rng)
		if len(verts) != 5 {
			t.Fatalf("planted verts = %v", verts)
		}
		if !ContainsSubgraph(g, h) {
			t.Fatal("planted pattern not found")
		}
	}
}

func TestDistributeCollectRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := Gnp(17, 0.4, rng)
		return Collect(Distribute(g)).Equal(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestLocalView(t *testing.T) {
	g := Cycle(5)
	views := Distribute(g)
	lv := views[2]
	if lv.Me() != 2 || lv.N() != 5 {
		t.Fatalf("view identity wrong: me=%d n=%d", lv.Me(), lv.N())
	}
	if !lv.HasEdge(1) || !lv.HasEdge(3) || lv.HasEdge(0) {
		t.Error("view adjacency wrong")
	}
	if lv.Degree() != 2 {
		t.Errorf("view degree = %d, want 2", lv.Degree())
	}
	if nb := lv.Neighbors(); len(nb) != 2 || nb[0] != 1 || nb[1] != 3 {
		t.Errorf("view neighbors = %v", nb)
	}
	if lv.HasEdge(2) || lv.HasEdge(-1) || lv.HasEdge(99) {
		t.Error("out-of-range HasEdge should be false")
	}
}
