// Package circsim implements Theorem 2 of the paper: simulating a
// bounded-depth circuit of b-separable gates with N = n²·s wires on the
// CLIQUE-UCAST model in O(D) rounds with O(b+s) bits per link per round.
//
// The construction follows the proof exactly:
//
//  1. Gates are weighted by fan-in plus fan-out. Heavy gates (weight at
//     least 2n·s) number at most n and are assigned one per player; light
//     gates are packed greedily so that no player owns more than 4n·s
//     weight. (The paper's thresholds n·s / 2n·s admit the same greedy
//     argument with both constants doubled, which also repairs the "at most
//     n heavy gates" count; see DESIGN.md.)
//  2. The circuit is evaluated layer by layer. In each stage, heavy gates
//     receive one b-bit partial digest per contributing player (case (a)),
//     heavy-gate values are forwarded to consumers at most once per
//     destination (case (b)), and light-to-light wire values are routed as
//     a Lenzen-balanced demand in s-bit bundles (case (c)).
//  3. A roughly-balanced external input assignment is redistributed to the
//     gate owners with the same routing (the theorem's final remark).
//
// Wire formats carry no gate identifiers: the circuit and the assignment
// are common knowledge, so both endpoints of every link enumerate the
// semantic meaning of each bit in the same deterministic order, exactly as
// a hardwired protocol would.
package circsim

import (
	"errors"
	"fmt"

	"repro/internal/bits"
	"repro/internal/circuit"
)

// Errors reported by the planner.
var (
	ErrTooManyHeavy = errors.New("circsim: more heavy gates than players")
	ErrOverflow     = errors.New("circsim: light-gate packing overflowed (impossible for valid circuits)")
	ErrBadInput     = errors.New("circsim: bad input layout")
)

// Plan is the static part of the Theorem 2 protocol: the gate assignment
// and the per-stage message-size schedule, all derived deterministically
// from the circuit, the player count and the input layout.
type Plan struct {
	Circ *circuit.Circuit
	N    int // players
	S    int // wire density s = ceil(wires / n²), the bundling unit

	Assign []int32 // gate -> owning player
	Heavy  []bool  // gate -> heavy?

	layers   [][]int32 // stage r -> gate ids in layer r (r = 0..Depth)
	heavyIdx []int32   // gate -> heavy ordinal (dense), -1 if light
	numHeavy int       // number of heavy gates
	sepMax   int       // max separability width over all gates
	inOwner  []int32   // input position -> original holder
	maxDir   []int     // stage -> max direct (a)+(b) bits on any link
	maxLight []int     // stage -> max light-light bits between any pair
	hasLight []bool    // stage -> any light-light traffic at all?
	maxInput int       // max input bits between any (holder, owner) pair
}

// BalancedInputOwner returns the canonical balanced input layout: input i
// is initially held by player i*n/numInputs — contiguous equal blocks, the
// layout used throughout the paper (player i receives the i-th share of
// the n² input bits).
func BalancedInputOwner(numInputs, n int) []int32 {
	owner := make([]int32, numInputs)
	for i := range owner {
		owner[i] = int32(i * n / numInputs)
	}
	return owner
}

// NewPlan computes the Theorem 2 assignment and message schedule.
// inputOwner[i] names the player initially holding input i; pass
// BalancedInputOwner for the canonical layout.
func NewPlan(c *circuit.Circuit, n int, inputOwner []int32) (*Plan, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: n=%d", ErrBadInput, n)
	}
	if len(inputOwner) != c.NumInputs() {
		return nil, fmt.Errorf("%w: %d owners for %d inputs", ErrBadInput, len(inputOwner), c.NumInputs())
	}
	for i, o := range inputOwner {
		if o < 0 || int(o) >= n {
			return nil, fmt.Errorf("%w: input %d owned by %d", ErrBadInput, i, o)
		}
	}
	p := &Plan{Circ: c, N: n}
	p.inOwner = append([]int32(nil), inputOwner...)
	wires := c.Wires()
	p.S = int((wires + int64(n)*int64(n) - 1) / (int64(n) * int64(n)))
	if p.S < 1 {
		p.S = 1
	}

	if err := p.assignGates(); err != nil {
		return nil, err
	}
	p.computeLayers()
	p.computeSchedule()
	return p, nil
}

// assignGates implements the proof's construction of the assignment I.
func (p *Plan) assignGates() error {
	c, n := p.Circ, p.N
	g := c.NumGates()
	heavyThresh := 2 * n * p.S
	lightCap := 4 * n * p.S

	p.Assign = make([]int32, g)
	p.Heavy = make([]bool, g)
	p.heavyIdx = make([]int32, g)

	nextHeavyOwner := 0
	for id := 0; id < g; id++ {
		p.heavyIdx[id] = -1
		w := c.FanIn(id) + c.FanOut(id)
		if w >= heavyThresh {
			p.Heavy[id] = true
			p.heavyIdx[id] = int32(nextHeavyOwner)
			if nextHeavyOwner >= n {
				return fmt.Errorf("%w: heavy gate %d has no free player", ErrTooManyHeavy, id)
			}
			p.Assign[id] = int32(nextHeavyOwner)
			nextHeavyOwner++
		}
	}
	p.numHeavy = nextHeavyOwner
	// Pack light gates least-loaded-first; the cap 4n·s can never be hit
	// while total light weight is at most 2n²·s (see package comment).
	lh := make(loadHeap, n)
	for i := 0; i < n; i++ {
		lh[i] = playerLoad{player: i}
	}
	for id := 0; id < g; id++ {
		if p.Heavy[id] {
			continue
		}
		w := c.FanIn(id) + c.FanOut(id)
		if lh[0].load+int64(w) > int64(lightCap) {
			return fmt.Errorf("%w: gate %d of weight %d", ErrOverflow, id, w)
		}
		p.Assign[id] = int32(lh[0].player)
		lh[0].load += int64(w)
		lh.siftDown(0)
	}
	for id := 0; id < g; id++ {
		if w := c.SeparabilityWidth(id); w > p.sepMax {
			p.sepMax = w
		}
	}
	return nil
}

func (p *Plan) computeLayers() {
	c := p.Circ
	p.layers = make([][]int32, c.Depth()+1)
	for id := 0; id < c.NumGates(); id++ {
		l := c.Layer(id)
		p.layers[l] = append(p.layers[l], int32(id))
	}
}

// computeSchedule derives, per stage, the maximum direct-exchange bits on
// any link and the maximum light-light bundle between any ordered pair —
// the quantities every player must agree on to stay in lock step.
func (p *Plan) computeSchedule() {
	c, n := p.Circ, p.N
	depth := c.Depth()
	p.maxDir = make([]int, depth+1)
	p.maxLight = make([]int, depth+1)
	p.hasLight = make([]bool, depth+1)

	linkBits := make(map[int64]int)   // (p*n+q) -> direct bits this stage
	pairBits := make(map[int64]int)   // (p*n+q) -> light bits this stage
	heavySent := make(map[int64]bool) // (gate*n+dstPlayer) -> already forwarded

	for r := 1; r <= depth; r++ {
		for k := range linkBits {
			delete(linkBits, k)
		}
		for k := range pairBits {
			delete(pairBits, k)
		}
		for _, id := range p.layers[r] {
			gid := int(id)
			q := int(p.Assign[gid])
			if p.Heavy[gid] {
				// (a): one partial per contributing player.
				width := c.SeparabilityWidth(gid)
				contrib := make(map[int32]bool)
				for _, w := range c.Inputs(gid) {
					contrib[p.Assign[w]] = true
				}
				for pl := range contrib {
					if int(pl) != q {
						linkBits[int64(pl)*int64(n)+int64(q)] += width
					}
				}
				continue
			}
			for _, w := range c.Inputs(gid) {
				src := int(p.Assign[w])
				if src == q {
					continue
				}
				if p.Heavy[w] {
					// (b): forward once per (heavy gate, destination).
					key := int64(w)*int64(n) + int64(q)
					if !heavySent[key] {
						heavySent[key] = true
						linkBits[int64(src)*int64(n)+int64(q)]++
					}
				} else {
					// (c): light-light wire, routed.
					pairBits[int64(src)*int64(n)+int64(q)]++
					p.hasLight[r] = true
				}
			}
		}
		for _, v := range linkBits {
			if v > p.maxDir[r] {
				p.maxDir[r] = v
			}
		}
		for _, v := range pairBits {
			if v > p.maxLight[r] {
				p.maxLight[r] = v
			}
		}
	}

	// Input redistribution demand: holder -> owner of the input gate.
	inPair := make(map[int64]int)
	for i := 0; i < c.NumInputs(); i++ {
		holder := int64(p.inOwner[i])
		owner := int64(p.Assign[c.InputGate(i)])
		if holder != owner {
			inPair[holder*int64(n)+owner]++
		}
	}
	for _, v := range inPair {
		if v > p.maxInput {
			p.maxInput = v
		}
	}
}

// Depth returns the circuit depth D (number of evaluation stages).
func (p *Plan) Depth() int { return p.Circ.Depth() }

// SeparabilityWidth returns the maximum b over all gates in the circuit.
func (p *Plan) SeparabilityWidth() int { return p.sepMax }

// MaxLightLoad returns, for reporting, the largest per-pair light bundle
// over all stages.
func (p *Plan) MaxLightLoad() int {
	max := 0
	for _, v := range p.maxLight {
		if v > max {
			max = v
		}
	}
	return max
}

// LightWeightCap returns the per-player light-weight bound 4n·s.
func (p *Plan) LightWeightCap() int { return 4 * p.N * p.S }

// HeavyThreshold returns the heaviness threshold 2n·s.
func (p *Plan) HeavyThreshold() int { return 2 * p.N * p.S }

// loadHeap is a fixed-size min-heap of player light loads, ordered by
// (load, player). The root is updated in place and sifted down, which
// avoids the interface boxing of container/heap on the per-gate path.
// The initial state (all loads zero, players ascending) is a valid heap.
type playerLoad struct {
	player int
	load   int64
}

type loadHeap []playerLoad

func (h loadHeap) less(i, j int) bool {
	if h[i].load != h[j].load {
		return h[i].load < h[j].load
	}
	return h[i].player < h[j].player
}

func (h loadHeap) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(h) && h.less(l, min) {
			min = l
		}
		if r < len(h) && h.less(r, min) {
			min = r
		}
		if min == i {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

// chunkIdxWidth returns the header width for chunk indices when a string
// of at most maxBits bits is cut into unit-bit chunks.
func chunkIdxWidth(maxBits, unit int) int {
	chunks := (maxBits + unit - 1) / unit
	if chunks < 1 {
		chunks = 1
	}
	return bits.UintWidth(uint64(chunks - 1))
}
