package circsim

import (
	"fmt"
	"math/bits"

	xbits "repro/internal/bits"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/routing"
)

// simState is one player's dense evaluation state for a Simulate run: flat
// bitsets replace the per-gate maps of the pre-plan implementation, and
// the scratch slices are reused across stages so the steady-state protocol
// allocates per message, not per gate.
type simState struct {
	val     []uint64 // bit g = value of gate g (dense, shared with circuit.EvalGateBits)
	known   []uint64 // bit g = gate g's value has been learned
	sent    []uint64 // bit heavyIdx*n+dst = heavy value already forwarded there
	recvd   []uint64 // bit heavyIdx = heavy value already learned
	contrib []uint64 // scratch bitset over players (ascending iteration = sorted)
	part    []bool   // scratch partial-input slice, cap >= max fan-in
	parts   []uint64 // scratch partial-digest slice
	perDst  []*xbits.Buffer
	expect  []int // scratch expected-bits-per-source, len n

	// Routing scratch reused across stages (stage-scoped lifetimes).
	msgs    []routing.Msg
	whole   []*xbits.Buffer
	gotBits []int
	readers []*xbits.Reader // routeBitStrings results
	dirRead []*xbits.Reader // stageDirect results
	seen    []uint64        // per-(source, chunk index) duplicate mask
}

func newSimState(plan *Plan) *simState {
	g := plan.Circ.NumGates()
	words := (g + 63) / 64
	return &simState{
		val:     make([]uint64, words),
		known:   make([]uint64, words),
		sent:    make([]uint64, (plan.numHeavy*plan.N+63)/64),
		recvd:   make([]uint64, (plan.numHeavy+63)/64),
		contrib: make([]uint64, (plan.N+63)/64),
		part:    make([]bool, 0, plan.Circ.Plan().MaxFanIn()),
		perDst:  make([]*xbits.Buffer, plan.N),
		expect:  make([]int, plan.N),
		whole:   make([]*xbits.Buffer, plan.N),
		gotBits: make([]int, plan.N),
		readers: make([]*xbits.Reader, plan.N),
		dirRead: make([]*xbits.Reader, plan.N),
	}
}

// resetExpect zeroes the expected-bits scratch.
func (st *simState) resetExpect() {
	for i := range st.expect {
		st.expect[i] = 0
	}
}

func bsGet(bs []uint64, i int32) bool { return xbits.BitsetGet(bs, int(i)) }
func bsSet(bs []uint64, i int32)      { xbits.BitsetSet(bs, int(i)) }

// releaseReaders returns the reassembled stream buffers to the bits pool
// once a stage has consumed them.
func releaseReaders(readers []*xbits.Reader) {
	for _, r := range readers {
		if r != nil {
			r.Release()
		}
	}
}

// setVal records gate g's value.
func (st *simState) setVal(g int32, v bool) {
	bsSet(st.known, g)
	if v {
		bsSet(st.val, g)
	}
}

// getBuf returns the pooled staging buffer for destination q.
func (st *simState) getBuf(q int) *xbits.Buffer {
	if st.perDst[q] == nil {
		st.perDst[q] = xbits.Get(64)
	}
	return st.perDst[q]
}

// releaseBufs returns all staged per-destination buffers to the pool (the
// frozen delivery views keep any in-flight bits alive).
func (st *simState) releaseBufs() {
	for q, b := range st.perDst {
		if b != nil {
			b.Release()
			st.perDst[q] = nil
		}
	}
}

// Simulate executes the Theorem 2 protocol for one player. myInputs holds
// the values of the input positions this player initially owns (in
// increasing input-index order, per plan's input layout). It returns the
// values of the circuit outputs owned by this player, keyed by output
// position.
//
// All players must call Simulate in the same round with the same plan and
// a shared Router.
func Simulate(p *core.Proc, plan *Plan, rt *routing.Router, myInputs []bool) (map[int]bool, error) {
	c, n, me := plan.Circ, plan.N, p.ID()
	if n != p.N() {
		return nil, fmt.Errorf("circsim: plan for %d players run on %d", n, p.N())
	}
	st := newSimState(plan)

	// Constants are known to their owners from the start.
	for id := 0; id < c.NumGates(); id++ {
		if int(plan.Assign[id]) != me {
			continue
		}
		switch c.Kind(id) {
		case circuit.Const0:
			st.setVal(int32(id), false)
		case circuit.Const1:
			st.setVal(int32(id), true)
		}
	}

	if err := distributeInputs(p, plan, rt, myInputs, st); err != nil {
		return nil, err
	}

	for r := 1; r <= c.Depth(); r++ {
		if err := stageDirect(p, plan, r, st); err != nil {
			return nil, fmt.Errorf("circsim: stage %d direct: %w", r, err)
		}
		if err := stageLight(p, plan, rt, r, st); err != nil {
			return nil, fmt.Errorf("circsim: stage %d light: %w", r, err)
		}
	}

	out := make(map[int]bool)
	for pos, g := range c.Outputs() {
		if int(plan.Assign[g]) == me {
			if !bsGet(st.known, g) {
				return nil, fmt.Errorf("circsim: output gate %d never evaluated", g)
			}
			out[pos] = bsGet(st.val, g)
		}
	}
	return out, nil
}

// distributeInputs routes externally-held input bits to the owners of the
// input gates (the balanced-input remark of Theorem 2).
func distributeInputs(p *core.Proc, plan *Plan, rt *routing.Router, myInputs []bool, st *simState) error {
	c, me := plan.Circ, p.ID()
	st.resetExpect()
	k := 0
	for i := 0; i < c.NumInputs(); i++ {
		gate := int32(c.InputGate(i))
		holder := int(plan.inOwner[i])
		owner := int(plan.Assign[gate])
		if holder == me {
			if k >= len(myInputs) {
				return fmt.Errorf("%w: player %d holds more inputs than provided", ErrBadInput, me)
			}
			v := myInputs[k]
			k++
			if owner == me {
				st.setVal(gate, v)
			} else {
				st.getBuf(owner).WriteBool(v)
			}
		} else if owner == me {
			st.expect[holder]++
		}
	}
	if k != len(myInputs) {
		return fmt.Errorf("%w: player %d given %d inputs, owns %d", ErrBadInput, me, len(myInputs), k)
	}
	if plan.maxInput == 0 {
		st.releaseBufs()
		return nil // all inputs are already local at their owners
	}
	readers, err := routeBitStrings(p, rt, st, st.perDst, st.expect, plan.S, plan.maxInput)
	st.releaseBufs()
	if err != nil {
		return err
	}
	defer releaseReaders(readers)
	for i := 0; i < c.NumInputs(); i++ {
		gate := int32(c.InputGate(i))
		holder := int(plan.inOwner[i])
		owner := int(plan.Assign[gate])
		if owner != me || holder == me {
			continue
		}
		rd := readers[holder]
		if rd == nil {
			return fmt.Errorf("circsim: missing input stream from %d", holder)
		}
		v, err := rd.ReadBool()
		if err != nil {
			return fmt.Errorf("circsim: short input stream from %d: %w", holder, err)
		}
		st.setVal(gate, v)
	}
	return nil
}

// stageDirect performs cases (a) and (b) of the stage-r protocol: partial
// digests into heavy gates, and one-shot forwarding of heavy values to
// light consumers. Sender and receiver walk the identical enumeration, so
// the wire carries no identifiers.
func stageDirect(p *core.Proc, plan *Plan, r int, st *simState) error {
	c, n, me := plan.Circ, plan.N, p.ID()

	// (a) sender side: partial digests for heavy gates of this layer.
	for _, id := range plan.layers[r] {
		if !plan.Heavy[id] {
			continue
		}
		q := int(plan.Assign[id])
		if q == me {
			continue
		}
		part := st.part[:0]
		for _, w := range c.Inputs(int(id)) {
			if int(plan.Assign[w]) == me {
				part = append(part, bsGet(st.val, w))
			}
		}
		if len(part) == 0 {
			continue // not a contributor
		}
		digest, err := c.Partial(int(id), part)
		if err != nil {
			return err
		}
		st.getBuf(q).WriteUint(digest, c.SeparabilityWidth(int(id)))
	}
	// (b) sender side: heavy values consumed by light gates, deduplicated
	// per destination.
	for _, id := range plan.layers[r] {
		if plan.Heavy[id] {
			continue
		}
		q := int(plan.Assign[id])
		if q == me {
			continue
		}
		for _, w := range c.Inputs(int(id)) {
			if !plan.Heavy[w] || int(plan.Assign[w]) != me {
				continue
			}
			key := plan.heavyIdx[w]*int32(n) + int32(q)
			if bsGet(st.sent, key) {
				continue
			}
			bsSet(st.sent, key)
			st.getBuf(q).WriteBool(bsGet(st.val, w))
		}
	}

	readers := st.dirRead
	for i := range readers {
		readers[i] = nil
	}
	if plan.maxDir[r] > 0 {
		rounds := core.ChunkRounds(plan.maxDir[r], p.Bandwidth())
		got, err := routing.ExchangeUnicast(p, st.perDst, rounds)
		st.releaseBufs()
		if err != nil {
			return err
		}
		for src, b := range got {
			if b != nil {
				readers[src] = xbits.NewReader(b)
			}
		}
		defer releaseReaders(readers)
	} else {
		st.releaseBufs()
	}

	// (a) receiver side: combine partials for my heavy gates.
	for _, id := range plan.layers[r] {
		if !plan.Heavy[id] || int(plan.Assign[id]) != me {
			continue
		}
		width := c.SeparabilityWidth(int(id))
		// Contributors in ascending player order; each link's buffer is
		// parsed in gate order, which is consistent because a player owns
		// at most one heavy gate. The contributor set lives in a player
		// bitset, whose word walk yields ascending order for free.
		for i := range st.contrib {
			st.contrib[i] = 0
		}
		ownPart := st.part[:0]
		for _, w := range c.Inputs(int(id)) {
			src := plan.Assign[w]
			if int(src) == me {
				ownPart = append(ownPart, bsGet(st.val, w))
			} else {
				bsSet(st.contrib, src)
			}
		}
		partials := st.parts[:0]
		if len(ownPart) > 0 {
			d, err := c.Partial(int(id), ownPart)
			if err != nil {
				return err
			}
			partials = append(partials, d)
		}
		for wd, word := range st.contrib {
			for word != 0 {
				src := wd*64 + bits.TrailingZeros64(word)
				word &= word - 1
				if readers[src] == nil {
					return fmt.Errorf("circsim: heavy gate %d missing partial from %d", id, src)
				}
				d, err := readers[src].ReadUint(width)
				if err != nil {
					return fmt.Errorf("circsim: short partial from %d: %w", src, err)
				}
				partials = append(partials, d)
			}
		}
		st.parts = partials[:0]
		v, err := c.Combine(int(id), partials)
		if err != nil {
			return err
		}
		st.setVal(id, v)
	}
	// (b) receiver side: learn heavy values feeding my light gates.
	for _, id := range plan.layers[r] {
		if plan.Heavy[id] || int(plan.Assign[id]) != me {
			continue
		}
		for _, w := range c.Inputs(int(id)) {
			src := int(plan.Assign[w])
			if !plan.Heavy[w] || src == me || bsGet(st.recvd, plan.heavyIdx[w]) {
				continue
			}
			if readers[src] == nil {
				return fmt.Errorf("circsim: light gate %d missing heavy value from %d", id, src)
			}
			v, err := readers[src].ReadBool()
			if err != nil {
				return fmt.Errorf("circsim: short heavy value from %d: %w", src, err)
			}
			st.setVal(w, v)
			bsSet(st.recvd, plan.heavyIdx[w])
		}
	}
	return nil
}

// stageLight performs case (c): light-to-light wire values, shipped as a
// Lenzen-balanced demand in s-bit bundles, then evaluates this player's
// light gates of the layer on the dense bitset.
func stageLight(p *core.Proc, plan *Plan, rt *routing.Router, r int, st *simState) error {
	c, me := plan.Circ, p.ID()

	if plan.hasLight[r] {
		st.resetExpect()
		for _, id := range plan.layers[r] {
			if plan.Heavy[id] {
				continue
			}
			q := int(plan.Assign[id])
			for _, w := range c.Inputs(int(id)) {
				if plan.Heavy[w] {
					continue
				}
				src := int(plan.Assign[w])
				switch {
				case src == me && q != me:
					st.getBuf(q).WriteBool(bsGet(st.val, w))
				case q == me && src != me:
					st.expect[src]++
				}
			}
		}
		readers, err := routeBitStrings(p, rt, st, st.perDst, st.expect, plan.S, plan.maxLight[r])
		st.releaseBufs()
		if err != nil {
			return err
		}
		defer releaseReaders(readers)
		for _, id := range plan.layers[r] {
			if plan.Heavy[id] || int(plan.Assign[id]) != me {
				continue
			}
			for _, w := range c.Inputs(int(id)) {
				if plan.Heavy[w] {
					continue
				}
				src := int(plan.Assign[w])
				if src == me {
					continue
				}
				rd := readers[src]
				if rd == nil {
					return fmt.Errorf("circsim: missing light stream from %d", src)
				}
				v, err := rd.ReadBool()
				if err != nil {
					return fmt.Errorf("circsim: short light stream from %d: %w", src, err)
				}
				st.setVal(w, v)
			}
		}
	}

	// Evaluate my light gates of this layer straight off the dense bitset.
	for _, id := range plan.layers[r] {
		if plan.Heavy[id] || int(plan.Assign[id]) != me {
			continue
		}
		for _, w := range c.Inputs(int(id)) {
			if !bsGet(st.known, w) {
				return fmt.Errorf("circsim: gate %d input %d unknown at player %d", id, w, me)
			}
		}
		st.setVal(id, c.EvalGateBits(int(id), st.val))
	}
	return nil
}

// routeBitStrings ships one logical bit string per destination through the
// balanced router, cutting each into unit-bit chunks tagged with a chunk
// index. perDst[d] (nil = nothing) is the string for player d; expect[s]
// gives the number of bits this player must receive from source s; maxPair
// is the globally agreed maximum string length, which fixes the chunk-index
// width. It returns one reader per source (nil where nothing was due). The
// chunk payloads are pooled: they are released once routed (the router
// copies payload bits into its relay frames), and the returned readers
// should be handed back via releaseReaders once the stage has consumed
// them.
func routeBitStrings(p *core.Proc, rt *routing.Router, st *simState, perDst []*xbits.Buffer,
	expect []int, unit, maxPair int) ([]*xbits.Reader, error) {
	idxW := chunkIdxWidth(maxPair, unit)
	msgs := st.msgs[:0]
	for d, buf := range perDst {
		// The release discipline below assumes no self-addressed streams
		// (Route hands those back with the ORIGINAL payload, which would
		// then be double-released); the protocol never needs one.
		if d == p.ID() && buf.Len() > 0 {
			return nil, fmt.Errorf("circsim: self-addressed stream staged by %d", d)
		}
		for i, off := 0, 0; off < buf.Len(); i, off = i+1, off+unit {
			end := off + unit
			if end > buf.Len() {
				end = buf.Len()
			}
			payload := xbits.Get(idxW + (end - off))
			payload.WriteUint(uint64(i), idxW)
			if err := payload.AppendRange(buf, off, end); err != nil {
				return nil, err
			}
			msgs = append(msgs, routing.Msg{Src: p.ID(), Dst: d, Payload: payload})
		}
	}
	recv, err := rt.Route(p, msgs, idxW+unit)
	for _, m := range msgs {
		m.Payload.Release()
	}
	st.msgs = msgs[:0]
	if err != nil {
		return nil, err
	}
	// Reassemble in place: the stream length per source is agreed up
	// front (expect), so each chunk is OR-ed straight into its slot at
	// idx*unit — no per-chunk buffers, no sort. A per-(source, index)
	// bitmask rejects duplicated chunks, so together with the total-bit
	// check every missing/duplicated index is caught.
	n := p.N()
	cw := ((maxPair+unit-1)/unit + 63) / 64 // chunk-mask words per source
	if cap(st.seen) < n*cw {
		st.seen = make([]uint64, n*cw)
	}
	seen := st.seen[:n*cw]
	for i := range seen {
		seen[i] = 0
	}
	whole := st.whole
	gotBits := st.gotBits
	for i := range whole {
		whole[i] = nil
		gotBits[i] = 0
	}
	var rd xbits.Reader
	for _, m := range recv {
		rd.Reset(m.Payload)
		idx, err := rd.ReadUint(idxW)
		if err != nil {
			return nil, fmt.Errorf("circsim: bad chunk header: %w", err)
		}
		body := m.Payload.Len() - idxW
		at := int(idx) * unit
		if at+body > expect[m.Src] {
			return nil, fmt.Errorf("circsim: stream from %d overflows: chunk %d of %d bits, want %d total",
				m.Src, idx, body, expect[m.Src])
		}
		slot, bit := m.Src*cw+int(idx>>6), uint64(1)<<uint(idx&63)
		if seen[slot]&bit != 0 {
			return nil, fmt.Errorf("circsim: duplicate chunk %d from %d", idx, m.Src)
		}
		seen[slot] |= bit
		w := whole[m.Src]
		if w == nil {
			w = xbits.Get(expect[m.Src])
			w.ZeroExtend(expect[m.Src])
			whole[m.Src] = w
		}
		if err := w.OrRange(m.Payload, idxW, m.Payload.Len(), at); err != nil {
			return nil, err
		}
		gotBits[m.Src] += body
		m.Payload.Release()
	}
	out := st.readers
	for i := range out {
		out[i] = nil
	}
	for src, w := range whole {
		if w == nil {
			continue
		}
		if gotBits[src] != expect[src] {
			return nil, fmt.Errorf("circsim: stream from %d has %d bits, want %d",
				src, gotBits[src], expect[src])
		}
		out[src] = xbits.NewReader(w)
	}
	for src, want := range expect {
		if want > 0 && out[src] == nil {
			return nil, fmt.Errorf("circsim: no stream from %d (want %d bits)", src, want)
		}
	}
	return out, nil
}

// RunResult is the outcome of EvalOnClique.
type RunResult struct {
	Output []bool
	Stats  core.Stats
	Plan   *Plan
}

// EvalOnClique builds the Theorem 2 plan for the circuit and evaluates it
// on a simulated CLIQUE-UCAST(n, bandwidth) network, with the input bits
// initially distributed according to inputOwner (BalancedInputOwner if
// nil). It returns the circuit outputs together with the round/bit
// accounting of the run.
func EvalOnClique(c *circuit.Circuit, n, bandwidth int, input []bool, inputOwner []int32, seed int64) (*RunResult, error) {
	if inputOwner == nil {
		inputOwner = BalancedInputOwner(c.NumInputs(), n)
	}
	plan, err := NewPlan(c, n, inputOwner)
	if err != nil {
		return nil, err
	}
	if len(input) != c.NumInputs() {
		return nil, fmt.Errorf("%w: %d bits for %d inputs", ErrBadInput, len(input), c.NumInputs())
	}
	perPlayer := make([][]bool, n)
	for i, o := range inputOwner {
		perPlayer[o] = append(perPlayer[o], input[i])
	}
	rt := routing.NewRouter(n)
	cfg := core.Config{N: n, Bandwidth: bandwidth, Model: core.Unicast, Seed: seed}
	res, err := core.RunProcs(cfg, func(p *core.Proc) error {
		out, err := Simulate(p, plan, rt, perPlayer[p.ID()])
		if err != nil {
			return err
		}
		p.SetOutput(out)
		return nil
	})
	if err != nil {
		return nil, err
	}
	output := make([]bool, len(c.Outputs()))
	seen := make([]bool, len(c.Outputs()))
	for _, o := range res.Outputs {
		for pos, v := range o.(map[int]bool) {
			output[pos] = v
			seen[pos] = true
		}
	}
	for pos, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("circsim: output %d unreported", pos)
		}
	}
	return &RunResult{Output: output, Stats: res.Stats, Plan: plan}, nil
}
