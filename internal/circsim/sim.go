package circsim

import (
	"fmt"
	"sort"

	"repro/internal/bits"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/routing"
)

// Simulate executes the Theorem 2 protocol for one player. myInputs holds
// the values of the input positions this player initially owns (in
// increasing input-index order, per plan's input layout). It returns the
// values of the circuit outputs owned by this player, keyed by output
// position.
//
// All players must call Simulate in the same round with the same plan and
// a shared Router.
func Simulate(p *core.Proc, plan *Plan, rt *routing.Router, myInputs []bool) (map[int]bool, error) {
	c, n, me := plan.Circ, plan.N, p.ID()
	if n != p.N() {
		return nil, fmt.Errorf("circsim: plan for %d players run on %d", n, p.N())
	}
	val := make(map[int32]bool)

	// Constants are known to their owners from the start.
	for id := 0; id < c.NumGates(); id++ {
		if int(plan.Assign[id]) != me {
			continue
		}
		switch c.Kind(id) {
		case circuit.Const0:
			val[int32(id)] = false
		case circuit.Const1:
			val[int32(id)] = true
		}
	}

	if err := distributeInputs(p, plan, rt, myInputs, val); err != nil {
		return nil, err
	}

	sentHeavy := make(map[int64]bool) // (gate*n + dst) forwarded already
	recvHeavy := make(map[int32]bool) // heavy gate value already learned

	for r := 1; r <= c.Depth(); r++ {
		if err := stageDirect(p, plan, r, val, sentHeavy, recvHeavy); err != nil {
			return nil, fmt.Errorf("circsim: stage %d direct: %w", r, err)
		}
		if err := stageLight(p, plan, rt, r, val); err != nil {
			return nil, fmt.Errorf("circsim: stage %d light: %w", r, err)
		}
	}

	out := make(map[int]bool)
	for pos, g := range c.Outputs() {
		if int(plan.Assign[g]) == me {
			v, ok := val[g]
			if !ok {
				return nil, fmt.Errorf("circsim: output gate %d never evaluated", g)
			}
			out[pos] = v
		}
	}
	return out, nil
}

// distributeInputs routes externally-held input bits to the owners of the
// input gates (the balanced-input remark of Theorem 2).
func distributeInputs(p *core.Proc, plan *Plan, rt *routing.Router, myInputs []bool, val map[int32]bool) error {
	c, me := plan.Circ, p.ID()
	perDst := make(map[int]*bits.Buffer)
	expect := make(map[int]int)
	k := 0
	for i := 0; i < c.NumInputs(); i++ {
		gate := int32(c.InputGate(i))
		holder := int(plan.inOwner[i])
		owner := int(plan.Assign[gate])
		if holder == me {
			if k >= len(myInputs) {
				return fmt.Errorf("%w: player %d holds more inputs than provided", ErrBadInput, me)
			}
			v := myInputs[k]
			k++
			if owner == me {
				val[gate] = v
			} else {
				buf := perDst[owner]
				if buf == nil {
					buf = bits.New(0)
					perDst[owner] = buf
				}
				buf.WriteBool(v)
			}
		} else if owner == me {
			expect[holder]++
		}
	}
	if k != len(myInputs) {
		return fmt.Errorf("%w: player %d given %d inputs, owns %d", ErrBadInput, me, len(myInputs), k)
	}
	if plan.maxInput == 0 {
		return nil // all inputs are already local at their owners
	}
	readers, err := routeBitStrings(p, rt, perDst, expect, plan.S, plan.maxInput)
	if err != nil {
		return err
	}
	for i := 0; i < c.NumInputs(); i++ {
		gate := int32(c.InputGate(i))
		holder := int(plan.inOwner[i])
		owner := int(plan.Assign[gate])
		if owner != me || holder == me {
			continue
		}
		rd := readers[holder]
		if rd == nil {
			return fmt.Errorf("circsim: missing input stream from %d", holder)
		}
		v, err := rd.ReadBool()
		if err != nil {
			return fmt.Errorf("circsim: short input stream from %d: %w", holder, err)
		}
		val[gate] = v
	}
	return nil
}

// stageDirect performs cases (a) and (b) of the stage-r protocol: partial
// digests into heavy gates, and one-shot forwarding of heavy values to
// light consumers. Sender and receiver walk the identical enumeration, so
// the wire carries no identifiers.
func stageDirect(p *core.Proc, plan *Plan, r int, val map[int32]bool,
	sentHeavy map[int64]bool, recvHeavy map[int32]bool) error {
	c, n, me := plan.Circ, plan.N, p.ID()

	perDst := make([]*bits.Buffer, n)
	buf := func(q int) *bits.Buffer {
		if perDst[q] == nil {
			perDst[q] = bits.New(0)
		}
		return perDst[q]
	}

	// (a) sender side: partial digests for heavy gates of this layer.
	for _, id := range plan.layers[r] {
		if !plan.Heavy[id] {
			continue
		}
		q := int(plan.Assign[id])
		if q == me {
			continue
		}
		var part []bool
		for _, w := range c.Inputs(int(id)) {
			if int(plan.Assign[w]) == me {
				part = append(part, val[w])
			}
		}
		if len(part) == 0 {
			continue // not a contributor
		}
		digest, err := c.Partial(int(id), part)
		if err != nil {
			return err
		}
		buf(q).WriteUint(digest, c.SeparabilityWidth(int(id)))
	}
	// (b) sender side: heavy values consumed by light gates, deduplicated
	// per destination.
	for _, id := range plan.layers[r] {
		if plan.Heavy[id] {
			continue
		}
		q := int(plan.Assign[id])
		if q == me {
			continue
		}
		for _, w := range c.Inputs(int(id)) {
			if !plan.Heavy[w] || int(plan.Assign[w]) != me {
				continue
			}
			key := int64(w)*int64(n) + int64(q)
			if sentHeavy[key] {
				continue
			}
			sentHeavy[key] = true
			buf(q).WriteBool(val[w])
		}
	}

	var readers []*bits.Reader
	if plan.maxDir[r] > 0 {
		rounds := core.ChunkRounds(plan.maxDir[r], p.Bandwidth())
		got, err := routing.ExchangeUnicast(p, perDst, rounds)
		if err != nil {
			return err
		}
		readers = make([]*bits.Reader, n)
		for src, b := range got {
			if b != nil {
				readers[src] = bits.NewReader(b)
			}
		}
	} else {
		readers = make([]*bits.Reader, n)
	}

	// (a) receiver side: combine partials for my heavy gates.
	for _, id := range plan.layers[r] {
		if !plan.Heavy[id] || int(plan.Assign[id]) != me {
			continue
		}
		width := c.SeparabilityWidth(int(id))
		// Contributors in ascending player order; each link's buffer is
		// parsed in gate order, which is consistent because a player owns
		// at most one heavy gate.
		contrib := make(map[int]bool)
		var ownPart []bool
		for _, w := range c.Inputs(int(id)) {
			src := int(plan.Assign[w])
			if src == me {
				ownPart = append(ownPart, val[w])
			} else {
				contrib[src] = true
			}
		}
		var partials []uint64
		if len(ownPart) > 0 {
			d, err := c.Partial(int(id), ownPart)
			if err != nil {
				return err
			}
			partials = append(partials, d)
		}
		srcs := make([]int, 0, len(contrib))
		for s := range contrib {
			srcs = append(srcs, s)
		}
		sort.Ints(srcs)
		for _, src := range srcs {
			if readers[src] == nil {
				return fmt.Errorf("circsim: heavy gate %d missing partial from %d", id, src)
			}
			d, err := readers[src].ReadUint(width)
			if err != nil {
				return fmt.Errorf("circsim: short partial from %d: %w", src, err)
			}
			partials = append(partials, d)
		}
		v, err := c.Combine(int(id), partials)
		if err != nil {
			return err
		}
		val[id] = v
	}
	// (b) receiver side: learn heavy values feeding my light gates.
	for _, id := range plan.layers[r] {
		if plan.Heavy[id] || int(plan.Assign[id]) != me {
			continue
		}
		for _, w := range c.Inputs(int(id)) {
			src := int(plan.Assign[w])
			if !plan.Heavy[w] || src == me || recvHeavy[w] {
				continue
			}
			if readers[src] == nil {
				return fmt.Errorf("circsim: light gate %d missing heavy value from %d", id, src)
			}
			v, err := readers[src].ReadBool()
			if err != nil {
				return fmt.Errorf("circsim: short heavy value from %d: %w", src, err)
			}
			val[w] = v
			recvHeavy[w] = true
		}
	}
	return nil
}

// stageLight performs case (c): light-to-light wire values, shipped as a
// Lenzen-balanced demand in s-bit bundles, then evaluates this player's
// light gates of the layer.
func stageLight(p *core.Proc, plan *Plan, rt *routing.Router, r int, val map[int32]bool) error {
	c, me := plan.Circ, p.ID()

	if plan.hasLight[r] {
		perDst := make(map[int]*bits.Buffer)
		expect := make(map[int]int)
		for _, id := range plan.layers[r] {
			if plan.Heavy[id] {
				continue
			}
			q := int(plan.Assign[id])
			for _, w := range c.Inputs(int(id)) {
				if plan.Heavy[w] {
					continue
				}
				src := int(plan.Assign[w])
				switch {
				case src == me && q != me:
					buf := perDst[q]
					if buf == nil {
						buf = bits.New(0)
						perDst[q] = buf
					}
					buf.WriteBool(val[w])
				case q == me && src != me:
					expect[src]++
				}
			}
		}
		readers, err := routeBitStrings(p, rt, perDst, expect, plan.S, plan.maxLight[r])
		if err != nil {
			return err
		}
		for _, id := range plan.layers[r] {
			if plan.Heavy[id] || int(plan.Assign[id]) != me {
				continue
			}
			for _, w := range c.Inputs(int(id)) {
				if plan.Heavy[w] {
					continue
				}
				src := int(plan.Assign[w])
				if src == me {
					continue
				}
				rd := readers[src]
				if rd == nil {
					return fmt.Errorf("circsim: missing light stream from %d", src)
				}
				v, err := rd.ReadBool()
				if err != nil {
					return fmt.Errorf("circsim: short light stream from %d: %w", src, err)
				}
				val[w] = v
			}
		}
	}

	// Evaluate my light gates of this layer.
	for _, id := range plan.layers[r] {
		if plan.Heavy[id] || int(plan.Assign[id]) != me {
			continue
		}
		ws := c.Inputs(int(id))
		part := make([]bool, len(ws))
		for i, w := range ws {
			v, ok := val[w]
			if !ok {
				return fmt.Errorf("circsim: gate %d input %d unknown at player %d", id, w, me)
			}
			part[i] = v
		}
		digest, err := c.Partial(int(id), part)
		if err != nil {
			return err
		}
		v, err := c.Combine(int(id), []uint64{digest})
		if err != nil {
			return err
		}
		val[id] = v
	}
	return nil
}

// routeBitStrings ships one logical bit string per destination through the
// balanced router, cutting each into unit-bit chunks tagged with a chunk
// index. expect gives the number of bits this player must receive from
// each source; maxPair is the globally agreed maximum string length, which
// fixes the chunk-index width. It returns one reader per source.
func routeBitStrings(p *core.Proc, rt *routing.Router, perDst map[int]*bits.Buffer,
	expect map[int]int, unit, maxPair int) (map[int]*bits.Reader, error) {
	idxW := chunkIdxWidth(maxPair, unit)
	var msgs []routing.Msg
	dsts := make([]int, 0, len(perDst))
	for d := range perDst {
		dsts = append(dsts, d)
	}
	sort.Ints(dsts)
	for _, d := range dsts {
		for i, ch := range perDst[d].Chunks(unit) {
			payload := bits.New(idxW + ch.Len())
			payload.WriteUint(uint64(i), idxW)
			payload.Append(ch)
			msgs = append(msgs, routing.Msg{Src: p.ID(), Dst: d, Payload: payload})
		}
	}
	recv, err := rt.Route(p, msgs, idxW+unit)
	if err != nil {
		return nil, err
	}
	type piece struct {
		idx int
		buf *bits.Buffer
	}
	bySrc := make(map[int][]piece)
	for _, m := range recv {
		rd := bits.NewReader(m.Payload)
		idx, err := rd.ReadUint(idxW)
		if err != nil {
			return nil, fmt.Errorf("circsim: bad chunk header: %w", err)
		}
		body, err := m.Payload.Slice(idxW, m.Payload.Len())
		if err != nil {
			return nil, err
		}
		bySrc[m.Src] = append(bySrc[m.Src], piece{idx: int(idx), buf: body})
	}
	out := make(map[int]*bits.Reader, len(bySrc))
	for src, pieces := range bySrc {
		sort.Slice(pieces, func(i, j int) bool { return pieces[i].idx < pieces[j].idx })
		whole := bits.New(0)
		for i, pc := range pieces {
			if pc.idx != i {
				return nil, fmt.Errorf("circsim: chunk %d missing from %d", i, src)
			}
			whole.Append(pc.buf)
		}
		if whole.Len() != expect[src] {
			return nil, fmt.Errorf("circsim: stream from %d has %d bits, want %d",
				src, whole.Len(), expect[src])
		}
		out[src] = bits.NewReader(whole)
	}
	for src, want := range expect {
		if want > 0 && out[src] == nil {
			return nil, fmt.Errorf("circsim: no stream from %d (want %d bits)", src, want)
		}
	}
	return out, nil
}

// RunResult is the outcome of EvalOnClique.
type RunResult struct {
	Output []bool
	Stats  core.Stats
	Plan   *Plan
}

// EvalOnClique builds the Theorem 2 plan for the circuit and evaluates it
// on a simulated CLIQUE-UCAST(n, bandwidth) network, with the input bits
// initially distributed according to inputOwner (BalancedInputOwner if
// nil). It returns the circuit outputs together with the round/bit
// accounting of the run.
func EvalOnClique(c *circuit.Circuit, n, bandwidth int, input []bool, inputOwner []int32, seed int64) (*RunResult, error) {
	if inputOwner == nil {
		inputOwner = BalancedInputOwner(c.NumInputs(), n)
	}
	plan, err := NewPlan(c, n, inputOwner)
	if err != nil {
		return nil, err
	}
	if len(input) != c.NumInputs() {
		return nil, fmt.Errorf("%w: %d bits for %d inputs", ErrBadInput, len(input), c.NumInputs())
	}
	perPlayer := make([][]bool, n)
	for i, o := range inputOwner {
		perPlayer[o] = append(perPlayer[o], input[i])
	}
	rt := routing.NewRouter(n)
	cfg := core.Config{N: n, Bandwidth: bandwidth, Model: core.Unicast, Seed: seed}
	res, err := core.RunProcs(cfg, func(p *core.Proc) error {
		out, err := Simulate(p, plan, rt, perPlayer[p.ID()])
		if err != nil {
			return err
		}
		p.SetOutput(out)
		return nil
	})
	if err != nil {
		return nil, err
	}
	output := make([]bool, len(c.Outputs()))
	seen := make([]bool, len(c.Outputs()))
	for _, o := range res.Outputs {
		for pos, v := range o.(map[int]bool) {
			output[pos] = v
			seen[pos] = true
		}
	}
	for pos, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("circsim: output %d unreported", pos)
		}
	}
	return &RunResult{Output: output, Stats: res.Stats, Plan: plan}, nil
}
