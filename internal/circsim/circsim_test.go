package circsim

import (
	"math/rand"
	"testing"

	"repro/internal/circuit"
)

func randomInput(n int, rng *rand.Rand) []bool {
	in := make([]bool, n)
	for i := range in {
		in[i] = rng.Intn(2) == 1
	}
	return in
}

// checkAgainstDirect simulates the circuit on the clique and compares with
// direct evaluation, returning the run for further inspection.
func checkAgainstDirect(t *testing.T, c *circuit.Circuit, n, bandwidth int, input []bool, seed int64) *RunResult {
	t.Helper()
	want, err := c.Eval(input)
	if err != nil {
		t.Fatal(err)
	}
	res, err := EvalOnClique(c, n, bandwidth, input, nil, seed)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if res.Output[i] != want[i] {
			t.Fatalf("output %d = %v on clique, want %v (n=%d b=%d)",
				i, res.Output[i], want[i], n, bandwidth)
		}
	}
	return res
}

func TestSimulateParityTree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c, err := circuit.ParityXorTree(64, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{2, 4, 8} {
		for trial := 0; trial < 3; trial++ {
			checkAgainstDirect(t, c, n, 32, randomInput(64, rng), int64(trial))
		}
	}
}

func TestSimulateParityMod2(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c, err := circuit.ParityMod2(64)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5; trial++ {
		checkAgainstDirect(t, c, 8, 16, randomInput(64, rng), int64(trial))
	}
}

func TestSimulateMajorityHeavyGate(t *testing.T) {
	// A single majority gate over n² inputs is heavy for small n and
	// exercises the case (a) partial-digest path.
	rng := rand.New(rand.NewSource(3))
	c, err := circuit.MajorityCircuit(64)
	if err != nil {
		t.Fatal(err)
	}
	res := checkAgainstDirect(t, c, 8, 16, randomInput(64, rng), 7)
	heavyCount := 0
	for _, h := range res.Plan.Heavy {
		if h {
			heavyCount++
		}
	}
	if heavyCount == 0 {
		t.Error("expected the majority gate to be heavy for n=8")
	}
}

func TestSimulateHeavyFanOutToLight(t *testing.T) {
	// One input with enormous fan-out (heavy) feeding many light AND
	// gates exercises the case (b) one-shot forwarding path.
	b := circuit.NewBuilder()
	hub := b.Input()
	others := make([]int, 80)
	for i := range others {
		others[i] = b.Input()
	}
	for _, o := range others {
		b.Output(b.Gate(circuit.And, 0, hub, o))
	}
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 3; trial++ {
		res := checkAgainstDirect(t, c, 4, 16, randomInput(81, rng), int64(trial))
		if !res.Plan.Heavy[0] {
			t.Fatal("hub input should be heavy (fan-out 80 >= 2*4*s)")
		}
	}
}

func TestSimulateInnerProductAndDisjointness(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ip, err := circuit.InnerProductMod2(50)
	if err != nil {
		t.Fatal(err)
	}
	dj, err := circuit.DisjointnessCircuit(50)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 3; trial++ {
		in := randomInput(100, rng)
		checkAgainstDirect(t, ip, 10, 24, in, int64(trial))
		checkAgainstDirect(t, dj, 10, 24, in, int64(trial))
	}
}

func TestSimulateRandomCircuits(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 6; trial++ {
		var (
			c   *circuit.Circuit
			err error
		)
		if trial%2 == 0 {
			c, err = circuit.RandomCC(40, 12, 3, 5, 6, rng)
		} else {
			c, err = circuit.RandomACC(40, 12, 3, 5, 6, rng)
		}
		if err != nil {
			t.Fatal(err)
		}
		n := []int{4, 5, 8}[trial%3]
		checkAgainstDirect(t, c, n, 32, randomInput(40, rng), int64(trial))
	}
}

func TestSimulateBandwidthOne(t *testing.T) {
	// The CLIQUE-UCAST(n,1) regime of Section 2.1: everything must still
	// be correct when each link carries a single bit per round.
	rng := rand.New(rand.NewSource(7))
	c, err := circuit.ParityXorTree(32, 2)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstDirect(t, c, 4, 1, randomInput(32, rng), 11)
}

func TestRoundsScaleWithDepthNotSize(t *testing.T) {
	// Theorem 2: rounds = O(D). Doubling the input size (at fixed depth)
	// must not change rounds once bandwidth covers O(b+s); growing depth
	// must grow rounds roughly linearly.
	rng := rand.New(rand.NewSource(8))
	roundsFor := func(depth, inputs int) int {
		c, err := circuit.RandomCC(inputs, 16, depth, 4, 6, rng)
		if err != nil {
			t.Fatal(err)
		}
		in := randomInput(inputs, rng)
		res, err := EvalOnClique(c, 8, 64, in, nil, 1)
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.Rounds
	}
	r3 := roundsFor(3, 64)
	r6 := roundsFor(6, 64)
	r12 := roundsFor(12, 64)
	if r6 <= r3 || r12 <= r6 {
		t.Errorf("rounds not increasing with depth: %d %d %d", r3, r6, r12)
	}
	// Per-stage cost is bounded: rounds per layer should be O(1).
	if r12 > 12*12 {
		t.Errorf("rounds per stage too high: %d rounds for depth 12", r12)
	}
	rBig := roundsFor(6, 256)
	if rBig > 3*r6+12 {
		t.Errorf("rounds grew too fast with size at fixed depth: %d vs %d", rBig, r6)
	}
}

func TestPlanInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		c, err := circuit.RandomACC(30, 10, 3, 4, 6, rng)
		if err != nil {
			t.Fatal(err)
		}
		n := 2 + rng.Intn(8)
		plan, err := NewPlan(c, n, BalancedInputOwner(c.NumInputs(), n))
		if err != nil {
			t.Fatal(err)
		}
		heavyPer := make([]int, n)
		lightLoad := make([]int64, n)
		for id := 0; id < c.NumGates(); id++ {
			w := int64(c.FanIn(id) + c.FanOut(id))
			if plan.Heavy[id] {
				heavyPer[plan.Assign[id]]++
				if int(w) < plan.HeavyThreshold() {
					t.Fatalf("gate %d marked heavy with weight %d < %d", id, w, plan.HeavyThreshold())
				}
			} else {
				lightLoad[plan.Assign[id]] += w
				if int(w) >= plan.HeavyThreshold() {
					t.Fatalf("gate %d with weight %d not marked heavy", id, w)
				}
			}
		}
		for pl := 0; pl < n; pl++ {
			if heavyPer[pl] > 1 {
				t.Fatalf("player %d owns %d heavy gates", pl, heavyPer[pl])
			}
			if lightLoad[pl] > int64(plan.LightWeightCap()) {
				t.Fatalf("player %d light load %d exceeds cap %d", pl, lightLoad[pl], plan.LightWeightCap())
			}
		}
	}
}

func TestCustomInputLayout(t *testing.T) {
	// All inputs initially at player 0 (still within the theorem's
	// "roughly balanced" allowance for this size).
	rng := rand.New(rand.NewSource(10))
	c, err := circuit.ParityXorTree(20, 3)
	if err != nil {
		t.Fatal(err)
	}
	owner := make([]int32, 20)
	in := randomInput(20, rng)
	want, _ := c.Eval(in)
	res, err := EvalOnClique(c, 5, 16, in, owner, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output[0] != want[0] {
		t.Error("skewed input layout produced wrong output")
	}
}

func TestMultiOutputOperator(t *testing.T) {
	// Remark 3: operators with multi-bit outputs. Output i = x_i XOR x_{i+1}.
	b := circuit.NewBuilder()
	in := make([]int, 16)
	for i := range in {
		in[i] = b.Input()
	}
	for i := 0; i+1 < len(in); i++ {
		b.Output(b.Gate(circuit.Xor, 0, in[i], in[i+1]))
	}
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 3; trial++ {
		checkAgainstDirect(t, c, 4, 8, randomInput(16, rng), int64(trial))
	}
}

func TestPlanErrors(t *testing.T) {
	c, err := circuit.MajorityCircuit(8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPlan(c, 4, make([]int32, 3)); err == nil {
		t.Error("wrong input-owner length accepted")
	}
	bad := make([]int32, 8)
	bad[0] = 9
	if _, err := NewPlan(c, 4, bad); err == nil {
		t.Error("out-of-range input owner accepted")
	}
	if _, err := EvalOnClique(c, 4, 8, make([]bool, 5), nil, 0); err == nil {
		t.Error("wrong input length accepted")
	}
}

func TestSingleNodeClique(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	c, err := circuit.MajorityCircuit(10)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstDirect(t, c, 1, 8, randomInput(10, rng), 0)
}

func TestConstGatesOnClique(t *testing.T) {
	b := circuit.NewBuilder()
	x := b.Input()
	one := b.Const(true)
	zero := b.Const(false)
	b.Output(b.Gate(circuit.And, 0, x, one))
	b.Output(b.Gate(circuit.Or, 0, x, zero))
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []bool{false, true} {
		checkAgainstDirect(t, c, 3, 8, []bool{v}, 5)
	}
}
