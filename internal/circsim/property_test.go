package circsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
)

// TestSimulationEquivalenceProperty is the package's central property:
// for random circuits, random inputs, random player counts, random
// bandwidths and random (balanced or skewed) input layouts, the Theorem 2
// simulation computes exactly what direct evaluation computes.
func TestSimulationEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nIn := 8 + rng.Intn(40)
		width := 4 + rng.Intn(12)
		depth := 1 + rng.Intn(4)
		fanIn := 2 + rng.Intn(4)
		var (
			c   *circuit.Circuit
			err error
		)
		switch rng.Intn(3) {
		case 0:
			c, err = circuit.RandomCC(nIn, width, depth, fanIn, 2+rng.Intn(5), rng)
		case 1:
			c, err = circuit.RandomACC(nIn, width, depth, fanIn, 2+rng.Intn(5), rng)
		default:
			c, err = circuit.ParityXorTree(nIn, fanIn)
		}
		if err != nil {
			t.Log(err)
			return false
		}
		n := 2 + rng.Intn(7)
		bandwidth := 1 << uint(rng.Intn(6)) // 1..32
		in := make([]bool, nIn)
		for i := range in {
			in[i] = rng.Intn(2) == 1
		}
		// Random input layout: balanced or all-at-one-player or random.
		var owner []int32
		switch rng.Intn(3) {
		case 0:
			owner = nil // balanced default
		case 1:
			owner = make([]int32, nIn) // everything at player 0
		default:
			owner = make([]int32, nIn)
			for i := range owner {
				owner[i] = int32(rng.Intn(n))
			}
		}
		want, err := c.Eval(in)
		if err != nil {
			t.Log(err)
			return false
		}
		res, err := EvalOnClique(c, n, bandwidth, in, owner, seed)
		if err != nil {
			t.Log(err)
			return false
		}
		for i := range want {
			if res.Output[i] != want[i] {
				t.Logf("seed %d: output %d differs (n=%d b=%d)", seed, i, n, bandwidth)
				return false
			}
		}
		if res.Stats.MaxLinkBits > bandwidth {
			t.Logf("seed %d: bandwidth violated", seed)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if testing.Short() {
		cfg.MaxCount = 8
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// random circuits with RandomCC — the circuit generators use their own
// rng; ensure a ParityXorTree edge case with fan-in larger than inputs.
func TestTinyTreeEdgeCases(t *testing.T) {
	c, err := circuit.ParityXorTree(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []bool{false, true} {
		res, err := EvalOnClique(c, 3, 4, []bool{v}, nil, 1)
		if err != nil {
			t.Fatal(err)
		}
		if res.Output[0] != v {
			t.Errorf("parity of single bit %v = %v", v, res.Output[0])
		}
	}
}

func TestDepthZeroCircuit(t *testing.T) {
	// Outputs wired directly to inputs: no evaluation stages at all, only
	// the input redistribution.
	b := circuit.NewBuilder()
	x := b.Input()
	y := b.Input()
	b.Output(y)
	b.Output(x)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if c.Depth() != 0 {
		t.Fatalf("depth = %d, want 0", c.Depth())
	}
	res, err := EvalOnClique(c, 4, 8, []bool{true, false}, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output[0] != false || res.Output[1] != true {
		t.Errorf("identity outputs wrong: %v", res.Output)
	}
}
