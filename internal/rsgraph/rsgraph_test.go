package rsgraph

import (
	"testing"
)

func TestProgressionFreeSetsAreAPFree(t *testing.T) {
	for _, m := range []int{1, 2, 3, 5, 10, 50, 200, 1000, 5000} {
		s := ProgressionFreeSet(m)
		if len(s) == 0 {
			t.Fatalf("m=%d: empty set", m)
		}
		for _, v := range s {
			if v < 1 || v > m {
				t.Fatalf("m=%d: element %d out of range", m, v)
			}
		}
		if HasThreeAP(s) {
			t.Errorf("m=%d: set of size %d has a 3-AP", m, len(s))
		}
	}
}

func TestProgressionFreeSetsAreLarge(t *testing.T) {
	// Behrend beats the trivial powers-of-... baselines: the greedy
	// (Erdős–Turán) set {1,2,4,5,10,11,...} has size ~ m^{log3(2)} ≈
	// m^0.63; Behrend must be asymptotically denser. At these small sizes
	// just require a healthy fraction.
	sizes := map[int]int{100: 10, 1000: 30, 10000: 80}
	for m, want := range sizes {
		s := ProgressionFreeSet(m)
		if len(s) < want {
			t.Errorf("m=%d: |S| = %d, want at least %d", m, len(s), want)
		}
	}
}

func TestProgressionFreeDensityShape(t *testing.T) {
	// |S(m)|/m should decay slower than any fixed power: compare the
	// density drop against the m^{-1/3} baseline over one decade.
	d1 := float64(len(ProgressionFreeSet(500))) / 500
	d2 := float64(len(ProgressionFreeSet(5000))) / 5000
	if d2 <= d1/4.0 {
		t.Errorf("density fell too fast: %f -> %f", d1, d2)
	}
}

func TestHasThreeAP(t *testing.T) {
	cases := []struct {
		s    []int
		want bool
	}{
		{[]int{1, 2, 3}, true},
		{[]int{1, 2, 4}, false},
		{[]int{1, 3, 5}, true},
		{[]int{2, 6, 10}, true},
		{[]int{1, 2, 4, 8, 16}, false},
		{[]int{5}, false},
		{[]int{}, false},
		{[]int{7, 11, 15}, true},
	}
	for _, c := range cases {
		if got := HasThreeAP(c.s); got != c.want {
			t.Errorf("HasThreeAP(%v) = %v, want %v", c.s, got, c.want)
		}
	}
}

func TestTripartiteVerify(t *testing.T) {
	for _, n := range []int{3, 8, 20, 64} {
		tr, err := NewTripartite(n)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Verify(); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
		if len(tr.Triangles) != n*len(tr.S) {
			t.Errorf("n=%d: %d triangles, want n|S| = %d", n, len(tr.Triangles), n*len(tr.S))
		}
		if tr.G.N() != 6*n {
			t.Errorf("n=%d: %d vertices, want 6n", n, tr.G.N())
		}
	}
}

func TestTriangleOfEdge(t *testing.T) {
	tr, err := NewTripartite(12)
	if err != nil {
		t.Fatal(err)
	}
	for i, tri := range tr.Triangles {
		for _, e := range [][2]int{{tri[0], tri[1]}, {tri[1], tri[2]}, {tri[0], tri[2]}} {
			if got := tr.TriangleOfEdge(e[0], e[1]); got != i {
				t.Fatalf("edge %v maps to triangle %d, want %d", e, got, i)
			}
			if got := tr.TriangleOfEdge(e[1], e[0]); got != i {
				t.Fatalf("reversed edge %v maps to %d, want %d", e, got, i)
			}
		}
	}
	if tr.TriangleOfEdge(0, 1) != -1 && tr.G.HasEdge(0, 1) == false {
		t.Error("nonexistent edge mapped to a triangle")
	}
}

func TestTriangleCountGrowth(t *testing.T) {
	// m(n) = n·|S(n)| must grow superlinearly (the n²/e^{O(√log n)} shape):
	// doubling n should much more than double the triangle count.
	t8, _ := NewTripartite(50)
	t16, _ := NewTripartite(200)
	c1 := len(t8.Triangles)
	c2 := len(t16.Triangles)
	if c2 < 6*c1 {
		t.Errorf("triangles grew too slowly: %d -> %d under n x4", c1, c2)
	}
}
