// Package rsgraph provides the Ruzsa–Szemerédi-style graphs of Claim 23:
// tripartite graphs with many edge-disjoint triangles in which every edge
// belongs to exactly one triangle. The paper cites [38] nonconstructively;
// we use the standard explicit route through Behrend's construction of
// large progression-free sets:
//
//	S ⊆ [1..m] with no 3-term arithmetic progression, |S| ≥ m/e^{O(√log m)},
//
// and the induced tripartite graph on A = [n], B = [2n], C = [3n] with a
// triangle (x, x+d, x+2d) for every x ∈ A, d ∈ S. Progression-freeness
// makes these the only triangles, and the parameterization puts every edge
// in exactly one of them — the two properties Theorem 24's reduction needs.
//
// Part sizes differ from Claim 23's normalization (|A| = |B| = n, |C| =
// n/3) by constants only; the reduction's accounting identity is reported
// against the actual vertex count.
package rsgraph

import (
	"errors"
	"fmt"

	"repro/internal/graph"
)

// ErrBadParam reports invalid construction parameters.
var ErrBadParam = errors.New("rsgraph: invalid parameter")

// ProgressionFreeSet returns a large subset of [1..m] with no 3-term
// arithmetic progression, via Behrend's construction: numbers whose base-d
// digits are below d/2 and have a fixed sum of squares. All (d, digits)
// shapes that fit in m are tried and the best norm bucket wins; digits
// below d/2 prevent carries, so x + z = 2y forces digit-wise equality, and
// equal norms then force x = z.
func ProgressionFreeSet(m int) []int {
	if m < 1 {
		return nil
	}
	if m <= 3 {
		// {1}, {1,2}, {1,2,3}\{2}... small cases by hand: {1,2} is AP-free;
		// {1,2,3} is not (1,2,3 is an AP).
		switch m {
		case 1:
			return []int{1}
		case 2:
			return []int{1, 2}
		default:
			return []int{1, 2} // any 3-element subset of [1..3] w/o AP has size 2
		}
	}
	// Erdős–Turán baseline (better than Behrend at small m): numbers with
	// only digits {0,1} in base 3 are 3-AP-free (x+z = 2y would need a
	// digit 2 or digit-wise equality without carries).
	best := []int{1, 2}
	var et []int
	for v := 0; v < m; v++ {
		ok := true
		for x := v; x > 0; x /= 3 {
			if x%3 == 2 {
				ok = false
				break
			}
		}
		if ok {
			et = append(et, v+1)
		}
	}
	if len(et) > len(best) {
		best = et
	}
	for d := 3; d <= 40; d++ {
		half := (d + 1) / 2 // digits in [0, half)
		for digits := 1; pow(d, digits) <= 4*m; digits++ {
			buckets := make(map[int][]int)
			enumDigits(d, half, digits, func(val, norm int) {
				v := val + 1 // shift into [1..m]
				if v <= m {
					buckets[norm] = append(buckets[norm], v)
				}
			})
			for _, set := range buckets {
				if len(set) > len(best) {
					best = set
				}
			}
		}
	}
	return best
}

// enumDigits enumerates all `digits`-digit base-d values with digits in
// [0, half), reporting each value and its digit-norm Σa_i².
func enumDigits(d, half, digits int, f func(val, norm int)) {
	var rec func(pos, val, norm int)
	rec = func(pos, val, norm int) {
		if pos == digits {
			f(val, norm)
			return
		}
		for a := 0; a < half; a++ {
			rec(pos+1, val*d+a, norm+a*a)
		}
	}
	rec(0, 0, 0)
}

func pow(b, e int) int {
	out := 1
	for i := 0; i < e; i++ {
		out *= b
		if out > 1<<30 {
			return out
		}
	}
	return out
}

// HasThreeAP reports whether the set contains x < y < z with x + z = 2y.
func HasThreeAP(s []int) bool {
	in := make(map[int]bool, len(s))
	for _, v := range s {
		in[v] = true
	}
	for i := 0; i < len(s); i++ {
		for j := i + 1; j < len(s); j++ {
			x, y := s[i], s[j]
			if x == y {
				continue
			}
			// z with x, y, z in AP: z = 2y - x; also y mid: handled by pairs.
			if in[2*y-x] && 2*y-x != y && 2*y-x != x {
				return true
			}
			if (x+y)%2 == 0 {
				mid := (x + y) / 2
				if in[mid] && mid != x && mid != y {
					return true
				}
			}
		}
	}
	return false
}

// Tripartite is the Claim 23 object: a tripartite graph whose triangle set
// is exactly an edge-disjoint family indexed by (x, d) pairs.
type Tripartite struct {
	G         *graph.Graph
	NParam    int      // the construction parameter n
	S         []int    // the progression-free difference set
	Triangles [][3]int // triangle i = (aVertex, bVertex, cVertex)

	aOff, bOff, cOff int
}

// NewTripartite builds the graph for parameter n: parts A = [n], B = [2n],
// C = [3n] and a triangle (x, x+d, x+2d) per x ∈ A, d ∈ S(n).
func NewTripartite(n int) (*Tripartite, error) {
	if n < 2 {
		return nil, fmt.Errorf("%w: n=%d", ErrBadParam, n)
	}
	s := ProgressionFreeSet(n)
	g := graph.New(6 * n)
	t := &Tripartite{G: g, NParam: n, S: s, aOff: 0, bOff: n, cOff: 3 * n}
	for x := 0; x < n; x++ {
		for _, d := range s {
			a := t.aOff + x
			b := t.bOff + x + d
			c := t.cOff + x + 2*d
			g.AddEdge(a, b)
			g.AddEdge(b, c)
			g.AddEdge(a, c)
			t.Triangles = append(t.Triangles, [3]int{a, b, c})
		}
	}
	return t, nil
}

// Parts returns the vertex ranges of A, B and C as (start, size) pairs.
func (t *Tripartite) Parts() (a, b, c [2]int) {
	return [2]int{t.aOff, t.NParam}, [2]int{t.bOff, 2 * t.NParam}, [2]int{t.cOff, 3 * t.NParam}
}

// PartOf returns 0, 1 or 2 for membership of v in A, B or C.
func (t *Tripartite) PartOf(v int) int {
	switch {
	case v < t.bOff:
		return 0
	case v < t.cOff:
		return 1
	default:
		return 2
	}
}

// TriangleOfEdge returns the unique triangle index containing the edge
// {u,v}, or -1 if the edge is not in the graph.
func (t *Tripartite) TriangleOfEdge(u, v int) int {
	if !t.G.HasEdge(u, v) {
		return -1
	}
	pu, pv := t.PartOf(u), t.PartOf(v)
	if pu > pv {
		u, v = v, u
		pu, pv = pv, pu
	}
	var x, d int
	switch {
	case pu == 0 && pv == 1: // (x, x+d)
		x = u - t.aOff
		d = (v - t.bOff) - x
	case pu == 1 && pv == 2: // (x+d, x+2d)
		d = (v - t.cOff) - (u - t.bOff)
		x = (u - t.bOff) - d
	case pu == 0 && pv == 2: // (x, x+2d)
		x = u - t.aOff
		diff := (v - t.cOff) - x
		if diff%2 != 0 {
			return -1
		}
		d = diff / 2
	default:
		return -1
	}
	for i, tri := range t.Triangles {
		if tri[0] == t.aOff+x && tri[1] == t.bOff+x+d && tri[2] == t.cOff+x+2*d {
			return i
		}
	}
	return -1
}

// Verify machine-checks the Claim 23 properties: the graph is tripartite,
// its triangle count equals the family size (no accidental triangles), and
// every edge lies in exactly one family member.
func (t *Tripartite) Verify() error {
	for _, e := range t.G.Edges() {
		if t.PartOf(e[0]) == t.PartOf(e[1]) {
			return fmt.Errorf("rsgraph: edge %v inside one part", e)
		}
	}
	if got, want := t.G.CountTriangles(), len(t.Triangles); got != want {
		return fmt.Errorf("rsgraph: %d triangles in graph, family has %d", got, want)
	}
	seen := make(map[[2]int]int)
	for i, tri := range t.Triangles {
		for _, e := range [][2]int{{tri[0], tri[1]}, {tri[1], tri[2]}, {tri[0], tri[2]}} {
			if e[0] > e[1] {
				e[0], e[1] = e[1], e[0]
			}
			if prev, dup := seen[e]; dup {
				return fmt.Errorf("rsgraph: edge %v in triangles %d and %d", e, prev, i)
			}
			seen[e] = i
		}
	}
	if len(seen) != t.G.M() {
		return fmt.Errorf("rsgraph: %d family edges vs %d graph edges", len(seen), t.G.M())
	}
	return nil
}
